package server_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/fsproto"
	"fsencr/internal/server"
	"fsencr/internal/telemetry"
)

// traceService boots a one-shard fair-mode service with an HTTP front.
func traceService(t *testing.T) (*server.Service, *httptest.Server) {
	t.Helper()
	svc := server.New(server.Options{
		Shards: 1,
		MCMode: core.SchemeFsEncr.MCMode(),
		Access: core.SchemeFsEncr.AccessMode(),
	})
	hs := httptest.NewServer(svc.Mux())
	t.Cleanup(func() { svc.Close(); hs.Close() })
	return svc, hs
}

// TestRequestTraceWaterfall drives real requests through the HTTP stack and
// asserts the retained trace is a parent-linked waterfall: a "request" root
// span whose descendants cover the queue wait, the kernel syscall, the
// controller page path and the PCM bank access.
func TestRequestTraceWaterfall(t *testing.T) {
	svc, hs := traceService(t)

	cl := fsclient.Dial(hs.URL)
	if err := cl.Login("acme", 1, "pw"); err != nil {
		t.Fatalf("login: %v", err)
	}
	if err := cl.Create(fsproto.CreateRequest{Name: "f.dat", Perm: 0600, Size: 65536, Encrypted: true}); err != nil {
		t.Fatalf("create: %v", err)
	}
	// Several writes/reads: the first completed data op is always retained
	// (the first trace in an empty sampler is its own slowest decile), and
	// more give the sampler a population.
	buf := make([]byte, 4096)
	for i := 0; i < 16; i++ {
		if err := cl.Write(fsproto.WriteRequest{Name: "f.dat", Offset: uint64(i) * 4096, Data: buf}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := cl.Read(fsproto.ReadRequest{Name: "f.dat", Offset: uint64(i) * 4096, Length: 4096}); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}

	snap := svc.Shards()[0].Snapshot()
	kept := snap.Counters["trace.kept_total"]
	dropped := snap.Counters["trace.dropped_total"]
	if kept == 0 {
		t.Fatal("no traces kept")
	}
	// Every sampled request reaching the worker got exactly one decision.
	if total := kept + dropped; total < 33 { // login + create + 16 writes + 16 reads
		t.Fatalf("kept %d + dropped %d = %d, want >= 33", kept, dropped, total)
	}

	// Reassemble the retained traces and find a write root.
	type key struct{ trace, span uint64 }
	ids := make(map[key]bool)
	var roots []telemetry.Span
	for _, sp := range snap.Spans {
		if sp.TraceID == 0 {
			t.Fatalf("untraced span leaked into a traced shard ring: %+v", sp)
		}
		ids[key{sp.TraceID, sp.SpanID}] = true
		if sp.Cat == "request" && sp.ParentID == 0 {
			roots = append(roots, sp)
		}
	}
	// Every non-root span's parent must exist within its own trace.
	for _, sp := range snap.Spans {
		if sp.ParentID != 0 && !ids[key{sp.TraceID, sp.ParentID}] {
			t.Fatalf("span %q parent %d missing from trace %016x", sp.Name, sp.ParentID, sp.TraceID)
		}
	}

	var root *telemetry.Span
	for i := range roots {
		if roots[i].Name == "write" {
			root = &roots[i]
			break
		}
	}
	if root == nil {
		t.Fatalf("no retained write root among %d roots", len(roots))
	}
	cats := make(map[string]bool)
	names := make(map[string]bool)
	for _, sp := range snap.Spans {
		if sp.TraceID != root.TraceID {
			continue
		}
		cats[sp.Cat] = true
		names[sp.Name] = true
		// Starts nest inside the root; ends may legitimately outlast it
		// (the controller's write queue drains after the syscall returns).
		if sp.Start < root.Start {
			t.Errorf("span %s/%s starts at %d, before root start %d",
				sp.Cat, sp.Name, sp.Start, root.Start)
		}
	}
	for _, want := range []string{"request", "kernel", "machine", "memctrl", "pcm"} {
		if !cats[want] {
			t.Errorf("write trace missing %q layer; categories: %v", want, cats)
		}
	}
	if !names["queue_wait"] {
		t.Errorf("write trace missing the queue_wait phase; names: %v", names)
	}
}

// TestRequestIDHeader pins satellite 1: every response carries X-Request-Id
// (client-minted when a trace context is sent, server-minted otherwise), the
// client captures it, and API errors quote it.
func TestRequestIDHeader(t *testing.T) {
	_, hs := traceService(t)

	cl := fsclient.Dial(hs.URL)
	if err := cl.Login("acme", 1, "pw"); err != nil {
		t.Fatalf("login: %v", err)
	}
	if cl.LastRequestID == "" {
		t.Fatal("client did not capture X-Request-Id")
	}

	// An error response still carries the ID, and the error quotes it.
	_, err := cl.Read(fsproto.ReadRequest{Name: "nope.dat", Offset: 0, Length: 16})
	if err == nil {
		t.Fatal("read of missing file succeeded")
	}
	var ae *fsclient.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("not an APIError: %v", err)
	}
	if ae.RequestID == "" || !strings.Contains(err.Error(), ae.RequestID) {
		t.Fatalf("API error does not carry/quote the request id: %v", err)
	}

	// A header-less request (no client trace context) gets a server-minted ID.
	resp, err := http.Post(hs.URL+"/v1/login", "application/json",
		strings.NewReader(`{"tenant":"acme","uid":1,"passphrase":"pw"}`))
	if err != nil {
		t.Fatalf("raw login: %v", err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(fsproto.RequestIDHeader); len(got) != 16 {
		t.Fatalf("raw response X-Request-Id = %q, want 16 hex digits", got)
	}
}

// TestErrorTracesAlwaysKept checks the tail-sampling policy end to end:
// failing requests are retained no matter how the trace ID hashes.
func TestErrorTracesAlwaysKept(t *testing.T) {
	svc, hs := traceService(t)

	cl := fsclient.Dial(hs.URL)
	if err := cl.Login("acme", 1, "pw"); err != nil {
		t.Fatalf("login: %v", err)
	}
	before := svc.Shards()[0].Snapshot().Counters["trace.kept_total"]
	const probes = 8
	for i := 0; i < probes; i++ {
		if _, err := cl.Read(fsproto.ReadRequest{Name: "missing.dat", Offset: 0, Length: 16}); err == nil {
			t.Fatal("read of missing file succeeded")
		}
	}
	after := svc.Shards()[0].Snapshot().Counters["trace.kept_total"]
	if after-before < probes {
		t.Fatalf("only %d of %d error traces kept", after-before, probes)
	}
}
