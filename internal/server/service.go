package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// ErrAuth reports a failed login: the (tenant, uid) pair already holds a
// keyring master key and the presented passphrase does not derive it.
var ErrAuth = errors.New("server: authentication failed")

// errBadToken reports a request carrying no (or an unknown) session token.
var errBadToken = fmt.Errorf("%w: unknown session token", ErrAuth)

// DefaultRequestTimeout bounds how long a request may wait for its shard
// (queueing plus execution) before the handler gives up.
const DefaultRequestTimeout = 30 * time.Second

// Options configures a Service.
type Options struct {
	// Shards is the number of simulated machines (<= 0 means 1).
	Shards int
	// MCMode/Access select the protection scheme each shard boots with
	// (typically core.SchemeFsEncr's: memory + file encryption, DAX).
	MCMode memctrl.Mode
	Access kernel.AccessMode
	// Cfg overrides the Table III machine configuration when non-nil.
	Cfg *config.Config
	// Deterministic switches every shard to schedule-sequence admission.
	Deterministic bool
	// SerialReads disables the concurrent read fast-path, forcing every
	// read-only op through worker admission — the serialized baseline the
	// read-scaling experiments A/B against. Deterministic and admission-
	// logged shards serialize reads regardless of this flag.
	SerialReads bool
	// PerTenantQueue bounds fair-mode per-tenant queues (<= 0 default).
	PerTenantQueue int
	// RequestTimeout bounds one request's queue+execute time (<= 0 default).
	RequestTimeout time.Duration
	// SLOLatency is the per-request wall-clock bound a "good" request must
	// finish within (<= 0 uses DefaultSLOLatency).
	SLOLatency time.Duration
	// SLOObjective is the target good-request fraction feeding the
	// burn-rate gauges (0 uses DefaultSLOObjective).
	SLOObjective float64

	// ClusterShards is the global number of shards in the cluster routing
	// space (0: standalone, equal to Shards). Tenant placement always
	// hashes over this count so every node of a cluster routes identically.
	ClusterShards int
	// OwnedShards lists the global shard indices this node boots and owns
	// (nil: 0..Shards-1, the standalone layout).
	OwnedShards []int
	// TokenPrefix namespaces session tokens per node ("" = "t") so tokens
	// minted on different nodes of one cluster never collide — a migrated
	// session keeps its token on the new owner.
	TokenPrefix string
	// ChipSeqBase, when non-zero, boots global shard i with controller chip
	// sequence ChipSeqBase+i. Every node of a cluster must share the base:
	// migration targets and replicas must derive the source's exact
	// processor keys, or neither ciphertext nor sealed OTT records would
	// authenticate. Zero keeps per-process auto sequences (standalone).
	ChipSeqBase uint64
	// AdmissionLog records every admitted request into its shard's
	// admission log — the replay substrate of migration and replication.
	AdmissionLog bool
	// CheckpointEvery folds a Merkle-root checkpoint into the admission log
	// every N operation records (0: only at migration freeze).
	CheckpointEvery int
}

// DefaultChipSeqBase is the conventional cluster-wide chip sequence base
// (any agreed-upon non-zero value works; nodes must just share it).
const DefaultChipSeqBase = 0xf5e0c000

// WrongShardError reports a request routed to a node that does not (or no
// longer) own(s) the target shard at this node's routing-table epoch. The
// HTTP layer maps it to 421 + CodeEpochMismatch; cluster-aware clients
// refresh their table and retry at the owner.
type WrongShardError struct {
	Shard int
	Epoch uint64
}

func (e *WrongShardError) Error() string {
	return fmt.Sprintf("server: shard %d not owned here (epoch %d)", e.Shard, e.Epoch)
}

// ErrDiverged reports an admission-log replay whose regenerated state
// disagrees with the source — a checkpoint or image Merkle root mismatch.
var ErrDiverged = errors.New("server: admission-log replay diverged")

// Session is one authenticated tenant session.
type Session struct {
	token  string
	tenant string
	gid    uint32
	uid    uint32 // effective kernel uid (never 0)
	pass   string // keyring passphrase; default file-key source

	// st[i] is the session's state on shard i, created and touched only
	// by that shard's worker goroutine.
	st []*sessState
}

// Service is the multi-tenant file service: the shard pool, the session
// table, and the host-side observability registry.
type Service struct {
	opts Options
	// nShards is the global routing shard count; shards holds the owned
	// shards ordered by global index and byIdx maps global index -> shard.
	// Both are guarded by mu: cluster membership changes at migration.
	nShards int
	shards  []*Shard
	byIdx   map[int]*Shard
	// retiredShards keeps post-migration source shards alive (they answer
	// stragglers with the routing error) until Close.
	retiredShards []*Shard

	// epoch is the routing-table epoch this node serves at; fwd holds the
	// Forwarder used to proxy misrouted requests to their owner.
	epoch  atomic.Uint64
	gEpoch *telemetry.Gauge
	cFwd   *telemetry.Counter
	fwd    atomic.Value
	fwdHC  *http.Client

	// reg is the host-side registry: request latencies in wall-clock
	// nanoseconds, queue depths, denial counters. Deliberately separate
	// from the per-shard deterministic registries.
	reg       *telemetry.Registry
	hReqNs    *telemetry.Histogram
	cReqs     *telemetry.Counter
	cErrs     *telemetry.Counter
	cAuthFail *telemetry.Counter
	cXDenied  *telemetry.Counter
	cBusy     *telemetry.Counter
	cEncErrs  *telemetry.Counter
	gJrnDrops *telemetry.Gauge
	// Fast-path accounting lives on the host registry, never the per-shard
	// deterministic ones: fast reads are wall-clock concurrency, not
	// schedule state.
	cFastReads     *telemetry.Counter
	cFastFallbacks *telemetry.Counter

	// slo is the per-tenant SLO table (slo.go); traceBase/traceSeq mint
	// trace IDs for requests arriving without a client-sent context.
	slo       *sloTable
	traceBase uint64
	traceSeq  atomic.Uint64

	mu       sync.RWMutex
	sessions map[string]*Session
	// moved tombstones tokens whose home shard migrated away: token ->
	// global shard index, answered with WrongShardError so the client
	// re-routes instead of seeing "unknown token".
	moved  map[string]int
	closed bool
	tokSeq atomic.Uint64
}

// New builds the service and boots its shards.
func New(opts Options) *Service {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.ClusterShards <= 0 {
		opts.ClusterShards = opts.Shards
	}
	if opts.TokenPrefix == "" {
		opts.TokenPrefix = "t"
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.SLOLatency <= 0 {
		opts.SLOLatency = DefaultSLOLatency
	}
	if opts.SLOObjective <= 0 || opts.SLOObjective >= 1 {
		opts.SLOObjective = DefaultSLOObjective
	}
	cfg := config.Default()
	if opts.Cfg != nil {
		cfg = *opts.Cfg
	}
	reg := telemetry.New()
	svc := &Service{
		opts:           opts,
		reg:            reg,
		hReqNs:         reg.Histogram("server.request_ns"),
		cReqs:          reg.Counter("server.requests_total"),
		cErrs:          reg.Counter("server.request_errors_total"),
		cAuthFail:      reg.Counter("server.auth_failures_total"),
		cXDenied:       reg.Counter("server.cross_tenant_denials_total"),
		cBusy:          reg.Counter("server.busy_rejections_total"),
		cEncErrs:       reg.Counter("server.response_encode_errors_total"),
		gJrnDrops:      reg.Gauge("journal.drops_total"),
		cFastReads:     reg.Counter("server.fast_reads_total"),
		cFastFallbacks: reg.Counter("server.fast_read_fallbacks_total"),
		slo:            newSLOTable(reg),
		traceBase:      0x66_73_65_6e_63_72, // "fsencr": fixed, IDs still unique via traceSeq
		sessions:       make(map[string]*Session),
		moved:          make(map[string]int),
		nShards:        opts.ClusterShards,
		byIdx:          make(map[int]*Shard),
		gEpoch:         reg.Gauge("cluster.epoch"),
		cFwd:           reg.Counter("server.forwarded_total"),
		fwdHC:          &http.Client{Timeout: opts.RequestTimeout},
	}
	owned := opts.OwnedShards
	if owned == nil {
		for i := 0; i < opts.Shards; i++ {
			owned = append(owned, i)
		}
	}
	for _, i := range owned {
		sh := NewShardWith(i, cfg, opts.MCMode, opts.Access, opts.Deterministic, opts.PerTenantQueue, reg,
			ShardOptions{ChipSeq: chipSeqFor(opts, i), Log: opts.AdmissionLog, CheckpointEvery: opts.CheckpointEvery})
		svc.byIdx[i] = sh
		svc.shards = append(svc.shards, sh)
	}
	sortShards(svc.shards)
	return svc
}

// chipSeqFor derives global shard i's controller chip sequence.
func chipSeqFor(opts Options, i int) uint64 {
	if opts.ChipSeqBase == 0 {
		return 0
	}
	return opts.ChipSeqBase + uint64(i)
}

func sortShards(shards []*Shard) {
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })
}

// Shards exposes the owned shard pool ordered by global index (tests,
// in-process inspection).
func (svc *Service) Shards() []*Shard { return svc.shardList() }

// shardList snapshots the owned shards under the lock; membership changes
// at migration.
func (svc *Service) shardList() []*Shard {
	svc.mu.RLock()
	defer svc.mu.RUnlock()
	out := make([]*Shard, len(svc.shards))
	copy(out, svc.shards)
	return out
}

// NShards returns the global routing shard count.
func (svc *Service) NShards() int { return svc.nShards }

// Registry exposes the host-side registry.
func (svc *Service) Registry() *telemetry.Registry { return svc.reg }

// shardFor places a tenant group on its shard, or reports the routing
// error when the shard lives on another node.
func (svc *Service) shardFor(gid uint32) (*Shard, error) {
	idx := fsproto.ShardIndex(gid, svc.nShards)
	svc.mu.RLock()
	sh := svc.byIdx[idx]
	svc.mu.RUnlock()
	if sh == nil {
		return nil, &WrongShardError{Shard: idx, Epoch: svc.epoch.Load()}
	}
	return sh, nil
}

// SetClusterEpoch publishes the routing-table epoch this node serves at:
// 421 responses carry it and the cluster.epoch gauge lands on /metrics.
func (svc *Service) SetClusterEpoch(e uint64) {
	svc.epoch.Store(e)
	svc.gEpoch.Set(e)
}

// ClusterEpoch returns the published routing-table epoch.
func (svc *Service) ClusterEpoch() uint64 { return svc.epoch.Load() }

// Forwarder resolves a global shard index to the base URL of its owning
// node ("" or !ok: unknown — answer 421 and let the client re-route).
type Forwarder func(shard int) (base string, ok bool)

// SetForwarder installs the owner lookup used to proxy misrouted requests
// during a migration's cutover window.
func (svc *Service) SetForwarder(f Forwarder) { svc.fwd.Store(f) }

func (svc *Service) forwarder() Forwarder {
	if f, ok := svc.fwd.Load().(Forwarder); ok {
		return f
	}
	return nil
}

// AdoptShard registers a shard (typically rehydrated from a migration's
// exported state) under its global index, folding sessions reconstructed
// during replay into the service session table. The caller starts the
// shard afterwards.
func (svc *Service) AdoptShard(sh *Shard) error {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return ErrDraining
	}
	if _, ok := svc.byIdx[sh.id]; ok {
		return fmt.Errorf("server: shard %d already owned", sh.id)
	}
	svc.byIdx[sh.id] = sh
	svc.shards = append(svc.shards, sh)
	sortShards(svc.shards)
	for tok, s := range sh.replaySessions {
		if _, exists := svc.sessions[tok]; !exists {
			svc.sessions[tok] = s
		}
		// The token came home (e.g. a shard migrating back): clear any
		// tombstone left by a previous departure.
		delete(svc.moved, tok)
	}
	sh.replaySessions = make(map[string]*Session)
	return nil
}

// RemoveShard unregisters a shard after migration cutover. Sessions homed
// on it are tombstoned (their tokens answer with the routing error) and
// the shard is parked on the retired list so Close still drains its
// worker. Returns nil if the shard is not owned here.
func (svc *Service) RemoveShard(idx int) *Shard {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	sh := svc.byIdx[idx]
	if sh == nil {
		return nil
	}
	delete(svc.byIdx, idx)
	for i, s := range svc.shards {
		if s == sh {
			svc.shards = append(svc.shards[:i], svc.shards[i+1:]...)
			break
		}
	}
	svc.retiredShards = append(svc.retiredShards, sh)
	for tok, s := range svc.sessions {
		if fsproto.ShardIndex(s.gid, svc.nShards) == idx {
			delete(svc.sessions, tok)
			svc.moved[tok] = idx
		}
	}
	return sh
}

// Login authenticates (tenant, uid, passphrase) and opens a session. The
// keyring on the tenant's shard is the credential store: first login
// registers the passphrase-derived master key, later logins must match it.
func (svc *Service) Login(ctx context.Context, tenant string, uid uint32, passphrase string, seq uint64) (*Session, error) {
	if tenant == "" || passphrase == "" {
		return nil, fmt.Errorf("%w: tenant and passphrase required", ErrAuth)
	}
	gid := fsproto.TenantGID(tenant)
	euid := fsproto.UserUID(tenant, uid)
	sh, err := svc.shardFor(gid)
	if err != nil {
		return nil, err
	}
	// Mint the token before admission so the login's admission-log record
	// carries it: replaying the record rebinds the same token to the same
	// credentials on a migration target or replica.
	token := fmt.Sprintf("%s%d", svc.opts.TokenPrefix, svc.tokSeq.Add(1))
	tc := TraceFromContext(ctx)
	var rec *fsproto.LogRecord
	if sh.logOn {
		rec = buildRecord("login", gid, seq, nil, tc,
			fsproto.LoginRequest{Tenant: tenant, UID: uid, Passphrase: passphrase})
		if rec != nil {
			rec.Token = token
			rec.Tenant = tenant
			rec.EUID = euid
			rec.Pass = passphrase
		}
	}
	_, err = sh.submit(ctx, gid, seq, "login", tc, rec, func() (any, error) {
		return svc.workLogin(sh, gid, tenant, uid, passphrase)
	})
	if err != nil {
		return nil, err
	}
	sess := &Session{
		token:  token,
		tenant: tenant,
		gid:    gid,
		uid:    euid,
		pass:   passphrase,
		st:     make([]*sessState, svc.nShards),
	}
	// Register the tenant on the SLO plane at first login so its gauges
	// exist (at zero) before any op traffic.
	svc.slo.tenant(tenant)
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return nil, ErrDraining
	}
	svc.sessions[sess.token] = sess
	return sess, nil
}

// workLogin is the worker-side login body, shared by live admission and
// admission-log replay.
func (svc *Service) workLogin(sh *Shard, gid uint32, tenant string, uid uint32, passphrase string) (any, error) {
	euid := fsproto.UserUID(tenant, uid)
	registered, ok := sh.Sys.Keyring.Verify(euid, passphrase)
	if registered && !ok {
		sh.Jrn.Emit(journal.Event{
			Cycle:  uint64(sh.Sys.M.MaxCoreTime()),
			Type:   journal.AuthFailure,
			Group:  gid,
			Detail: fmt.Sprintf("tenant %s uid %d", tenant, uid),
		})
		svc.cAuthFail.Inc()
		return nil, fmt.Errorf("%w: tenant %s uid %d", ErrAuth, tenant, uid)
	}
	if !registered {
		sh.Sys.Keyring.Login(euid, passphrase)
	}
	return nil, nil
}

// Logout closes a session. The keyring registration stays: it is the
// tenant user's credential record, not the session.
func (svc *Service) Logout(token string) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	delete(svc.sessions, token)
}

// session resolves a token.
func (svc *Service) session(token string) (*Session, error) {
	svc.mu.RLock()
	defer svc.mu.RUnlock()
	s, ok := svc.sessions[token]
	if !ok {
		if idx, moved := svc.moved[token]; moved {
			return nil, &WrongShardError{Shard: idx, Epoch: svc.epoch.Load()}
		}
		return nil, errBadToken
	}
	return s, nil
}

// Token returns the session's token (for clients driving the service
// in-process).
func (s *Session) Token() string { return s.token }

// peerSession admits a forwarded request whose session is homed on the
// forwarding node: a fabric peer vouches for the identity in the peer
// headers (the same trust the admission-log replayer extends to record
// credentials), and the session registers here as a shadow so repeated
// forwards reuse its per-shard state. Tenant-level authorization is
// unaffected — it comes from the request body's passphrase.
func (svc *Service) peerSession(r *http.Request) (*Session, error) {
	tenant := r.Header.Get(fsproto.PeerTenantHeader)
	token := r.Header.Get(fsproto.TokenHeader)
	if r.Header.Get(fsproto.ForwardedHeader) == "" || tenant == "" || token == "" {
		return nil, errBadToken
	}
	uid, err := strconv.ParseUint(r.Header.Get(fsproto.PeerUIDHeader), 10, 32)
	if err != nil {
		return nil, errBadToken
	}
	sess := &Session{
		token:  token,
		tenant: tenant,
		gid:    fsproto.TenantGID(tenant),
		uid:    uint32(uid),
		pass:   r.Header.Get(fsproto.PeerPassHeader),
		st:     make([]*sessState, svc.nShards),
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return nil, ErrDraining
	}
	if s, ok := svc.sessions[token]; ok {
		return s, nil
	}
	svc.sessions[token] = sess
	return sess, nil
}

// MetricsSnapshot merges the host-side registry with every shard's
// deterministic registry, in shard order. Aggregate only — per-shard
// snapshots are served separately so their byte-identity is checkable.
// Export-time gauges are refreshed here: the audit chain head of each
// shard and the total number of journal events dropped to ring overflow.
func (svc *Service) MetricsSnapshot() *telemetry.Snapshot {
	drops := uint64(0)
	shards := svc.shardList()
	for _, sh := range shards {
		svc.reg.Gauge(fmt.Sprintf("server.shard%d.audit_head_seq", sh.ID())).Set(sh.Aud.HeadSeq())
		drops += sh.Jrn.Drops()
	}
	svc.gJrnDrops.Set(drops)
	out := svc.reg.Snapshot()
	out.Runs = 1
	svc.injectSLOGauges(out)
	for _, sh := range shards {
		out.Merge(sh.Snapshot())
	}
	return out
}

// AuditRecords reads back every shard's retained audit window, in shard
// order, annotating each record with its shard index. Each read runs on
// the owning worker (DoSide), so exports serialize with tenant traffic.
func (svc *Service) AuditRecords() []audit.Record {
	ctx, cancel := context.WithTimeout(context.Background(), svc.opts.RequestTimeout)
	defer cancel()
	var out []audit.Record
	for _, sh := range svc.shardList() {
		sh := sh
		_ = svc.doSideOrClosed(ctx, sh, func() {
			recs := sh.Aud.Records()
			for i := range recs {
				recs[i].Shard = sh.ID()
			}
			out = append(out, recs...)
		})
	}
	return out
}

// VerifyAudit recomputes every shard's audit hash chain against its head
// register, returning the first break found.
func (svc *Service) VerifyAudit() error {
	ctx, cancel := context.WithTimeout(context.Background(), svc.opts.RequestTimeout)
	defer cancel()
	for _, sh := range svc.shardList() {
		var verr error
		if err := svc.doSideOrClosed(ctx, sh, func() { verr = sh.Aud.Verify() }); err != nil {
			return err
		}
		if verr != nil {
			return fmt.Errorf("shard %d: %w", sh.ID(), verr)
		}
	}
	return nil
}

// doSideOrClosed is DoSide with the service-closed fast path (a drained
// shard's worker is gone; exports just skip it).
func (svc *Service) doSideOrClosed(ctx context.Context, sh *Shard, fn func()) error {
	svc.mu.RLock()
	closed := svc.closed
	svc.mu.RUnlock()
	if closed {
		return ErrDraining
	}
	return sh.DoSide(ctx, fn)
}

// JournalEvents concatenates the shard journals in shard order,
// reassigning global sequence numbers.
func (svc *Service) JournalEvents() []journal.Event {
	var out []journal.Event
	for _, sh := range svc.shardList() {
		out = append(out, sh.Jrn.Events()...)
	}
	for i := range out {
		out[i].Seq = uint64(i)
	}
	return out
}

// Close drains every shard in order and drops the session table. After
// Close, admission returns ErrDraining.
func (svc *Service) Close() {
	svc.mu.Lock()
	svc.closed = true
	svc.sessions = make(map[string]*Session)
	shards := append([]*Shard(nil), svc.shards...)
	shards = append(shards, svc.retiredShards...)
	svc.retiredShards = nil
	svc.mu.Unlock()
	for _, sh := range shards {
		sh.Close()
	}
}
