package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// ErrAuth reports a failed login: the (tenant, uid) pair already holds a
// keyring master key and the presented passphrase does not derive it.
var ErrAuth = errors.New("server: authentication failed")

// errBadToken reports a request carrying no (or an unknown) session token.
var errBadToken = fmt.Errorf("%w: unknown session token", ErrAuth)

// DefaultRequestTimeout bounds how long a request may wait for its shard
// (queueing plus execution) before the handler gives up.
const DefaultRequestTimeout = 30 * time.Second

// Options configures a Service.
type Options struct {
	// Shards is the number of simulated machines (<= 0 means 1).
	Shards int
	// MCMode/Access select the protection scheme each shard boots with
	// (typically core.SchemeFsEncr's: memory + file encryption, DAX).
	MCMode memctrl.Mode
	Access kernel.AccessMode
	// Cfg overrides the Table III machine configuration when non-nil.
	Cfg *config.Config
	// Deterministic switches every shard to schedule-sequence admission.
	Deterministic bool
	// PerTenantQueue bounds fair-mode per-tenant queues (<= 0 default).
	PerTenantQueue int
	// RequestTimeout bounds one request's queue+execute time (<= 0 default).
	RequestTimeout time.Duration
	// SLOLatency is the per-request wall-clock bound a "good" request must
	// finish within (<= 0 uses DefaultSLOLatency).
	SLOLatency time.Duration
	// SLOObjective is the target good-request fraction feeding the
	// burn-rate gauges (0 uses DefaultSLOObjective).
	SLOObjective float64
}

// Session is one authenticated tenant session.
type Session struct {
	token  string
	tenant string
	gid    uint32
	uid    uint32 // effective kernel uid (never 0)
	pass   string // keyring passphrase; default file-key source

	// st[i] is the session's state on shard i, created and touched only
	// by that shard's worker goroutine.
	st []*sessState
}

// Service is the multi-tenant file service: the shard pool, the session
// table, and the host-side observability registry.
type Service struct {
	opts   Options
	shards []*Shard

	// reg is the host-side registry: request latencies in wall-clock
	// nanoseconds, queue depths, denial counters. Deliberately separate
	// from the per-shard deterministic registries.
	reg       *telemetry.Registry
	hReqNs    *telemetry.Histogram
	cReqs     *telemetry.Counter
	cErrs     *telemetry.Counter
	cAuthFail *telemetry.Counter
	cXDenied  *telemetry.Counter
	cBusy     *telemetry.Counter
	cEncErrs  *telemetry.Counter
	gJrnDrops *telemetry.Gauge

	// slo is the per-tenant SLO table (slo.go); traceBase/traceSeq mint
	// trace IDs for requests arriving without a client-sent context.
	slo       *sloTable
	traceBase uint64
	traceSeq  atomic.Uint64

	mu       sync.RWMutex
	sessions map[string]*Session
	closed   bool
	tokSeq   atomic.Uint64
}

// New builds the service and boots its shards.
func New(opts Options) *Service {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.SLOLatency <= 0 {
		opts.SLOLatency = DefaultSLOLatency
	}
	if opts.SLOObjective <= 0 || opts.SLOObjective >= 1 {
		opts.SLOObjective = DefaultSLOObjective
	}
	cfg := config.Default()
	if opts.Cfg != nil {
		cfg = *opts.Cfg
	}
	reg := telemetry.New()
	svc := &Service{
		opts:      opts,
		reg:       reg,
		hReqNs:    reg.Histogram("server.request_ns"),
		cReqs:     reg.Counter("server.requests_total"),
		cErrs:     reg.Counter("server.request_errors_total"),
		cAuthFail: reg.Counter("server.auth_failures_total"),
		cXDenied:  reg.Counter("server.cross_tenant_denials_total"),
		cBusy:     reg.Counter("server.busy_rejections_total"),
		cEncErrs:  reg.Counter("server.response_encode_errors_total"),
		gJrnDrops: reg.Gauge("journal.drops_total"),
		slo:       newSLOTable(reg),
		traceBase: 0x66_73_65_6e_63_72, // "fsencr": fixed, IDs still unique via traceSeq
		sessions:  make(map[string]*Session),
	}
	for i := 0; i < opts.Shards; i++ {
		svc.shards = append(svc.shards,
			NewShard(i, cfg, opts.MCMode, opts.Access, opts.Deterministic, opts.PerTenantQueue, reg))
	}
	return svc
}

// Shards exposes the shard pool (tests, in-process inspection).
func (svc *Service) Shards() []*Shard { return svc.shards }

// Registry exposes the host-side registry.
func (svc *Service) Registry() *telemetry.Registry { return svc.reg }

// shardFor places a tenant group on its shard.
func (svc *Service) shardFor(gid uint32) *Shard {
	return svc.shards[fsproto.ShardIndex(gid, len(svc.shards))]
}

// Login authenticates (tenant, uid, passphrase) and opens a session. The
// keyring on the tenant's shard is the credential store: first login
// registers the passphrase-derived master key, later logins must match it.
func (svc *Service) Login(ctx context.Context, tenant string, uid uint32, passphrase string, seq uint64) (*Session, error) {
	if tenant == "" || passphrase == "" {
		return nil, fmt.Errorf("%w: tenant and passphrase required", ErrAuth)
	}
	gid := fsproto.TenantGID(tenant)
	euid := fsproto.UserUID(tenant, uid)
	sh := svc.shardFor(gid)
	_, err := sh.DoTraced(ctx, gid, seq, "login", TraceFromContext(ctx), func() (any, error) {
		registered, ok := sh.Sys.Keyring.Verify(euid, passphrase)
		if registered && !ok {
			sh.Jrn.Emit(journal.Event{
				Cycle:  uint64(sh.Sys.M.MaxCoreTime()),
				Type:   journal.AuthFailure,
				Group:  gid,
				Detail: fmt.Sprintf("tenant %s uid %d", tenant, uid),
			})
			svc.cAuthFail.Inc()
			return nil, fmt.Errorf("%w: tenant %s uid %d", ErrAuth, tenant, uid)
		}
		if !registered {
			sh.Sys.Keyring.Login(euid, passphrase)
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	sess := &Session{
		token:  fmt.Sprintf("t%d", svc.tokSeq.Add(1)),
		tenant: tenant,
		gid:    gid,
		uid:    euid,
		pass:   passphrase,
		st:     make([]*sessState, len(svc.shards)),
	}
	// Register the tenant on the SLO plane at first login so its gauges
	// exist (at zero) before any op traffic.
	svc.slo.tenant(tenant)
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return nil, ErrDraining
	}
	svc.sessions[sess.token] = sess
	return sess, nil
}

// Logout closes a session. The keyring registration stays: it is the
// tenant user's credential record, not the session.
func (svc *Service) Logout(token string) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	delete(svc.sessions, token)
}

// session resolves a token.
func (svc *Service) session(token string) (*Session, error) {
	svc.mu.RLock()
	defer svc.mu.RUnlock()
	s, ok := svc.sessions[token]
	if !ok {
		return nil, errBadToken
	}
	return s, nil
}

// Token returns the session's token (for clients driving the service
// in-process).
func (s *Session) Token() string { return s.token }

// MetricsSnapshot merges the host-side registry with every shard's
// deterministic registry, in shard order. Aggregate only — per-shard
// snapshots are served separately so their byte-identity is checkable.
// Export-time gauges are refreshed here: the audit chain head of each
// shard and the total number of journal events dropped to ring overflow.
func (svc *Service) MetricsSnapshot() *telemetry.Snapshot {
	drops := uint64(0)
	for _, sh := range svc.shards {
		svc.reg.Gauge(fmt.Sprintf("server.shard%d.audit_head_seq", sh.ID())).Set(sh.Aud.HeadSeq())
		drops += sh.Jrn.Drops()
	}
	svc.gJrnDrops.Set(drops)
	out := svc.reg.Snapshot()
	out.Runs = 1
	svc.injectSLOGauges(out)
	for _, sh := range svc.shards {
		out.Merge(sh.Snapshot())
	}
	return out
}

// AuditRecords reads back every shard's retained audit window, in shard
// order, annotating each record with its shard index. Each read runs on
// the owning worker (DoSide), so exports serialize with tenant traffic.
func (svc *Service) AuditRecords() []audit.Record {
	ctx, cancel := context.WithTimeout(context.Background(), svc.opts.RequestTimeout)
	defer cancel()
	var out []audit.Record
	for _, sh := range svc.shards {
		sh := sh
		_ = svc.doSideOrClosed(ctx, sh, func() {
			recs := sh.Aud.Records()
			for i := range recs {
				recs[i].Shard = sh.ID()
			}
			out = append(out, recs...)
		})
	}
	return out
}

// VerifyAudit recomputes every shard's audit hash chain against its head
// register, returning the first break found.
func (svc *Service) VerifyAudit() error {
	ctx, cancel := context.WithTimeout(context.Background(), svc.opts.RequestTimeout)
	defer cancel()
	for _, sh := range svc.shards {
		var verr error
		if err := svc.doSideOrClosed(ctx, sh, func() { verr = sh.Aud.Verify() }); err != nil {
			return err
		}
		if verr != nil {
			return fmt.Errorf("shard %d: %w", sh.ID(), verr)
		}
	}
	return nil
}

// doSideOrClosed is DoSide with the service-closed fast path (a drained
// shard's worker is gone; exports just skip it).
func (svc *Service) doSideOrClosed(ctx context.Context, sh *Shard, fn func()) error {
	svc.mu.RLock()
	closed := svc.closed
	svc.mu.RUnlock()
	if closed {
		return ErrDraining
	}
	return sh.DoSide(ctx, fn)
}

// JournalEvents concatenates the shard journals in shard order,
// reassigning global sequence numbers.
func (svc *Service) JournalEvents() []journal.Event {
	var out []journal.Event
	for _, sh := range svc.shards {
		out = append(out, sh.Jrn.Events()...)
	}
	for i := range out {
		out[i].Seq = uint64(i)
	}
	return out
}

// Close drains every shard in order and drops the session table. After
// Close, admission returns ErrDraining.
func (svc *Service) Close() {
	svc.mu.Lock()
	svc.closed = true
	svc.sessions = make(map[string]*Session)
	svc.mu.Unlock()
	for _, sh := range svc.shards {
		sh.Close()
	}
}
