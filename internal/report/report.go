// Package report renders simple ASCII visualizations of experiment results
// — horizontal bar charts for the figure-regeneration commands, so the
// paper's bar-graph figures have a directly comparable visual form in
// terminal output.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value in a chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart. Values are scaled so the largest
// bar spans width characters. A baseline of 1.0 (for normalized figures) is
// marked when it falls inside the plotted range.
type BarChart struct {
	Title string
	Unit  string
	Width int
	Bars  []Bar
	// Baseline, if nonzero, draws a reference mark at that value.
	Baseline float64
}

// NewBarChart returns a chart with a default width of 40 columns.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 40}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// String renders the chart.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(c.Bars) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxVal := 0.0
	maxLabel := 0
	for _, bar := range c.Bars {
		if bar.Value > maxVal {
			maxVal = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	if c.Baseline > maxVal {
		maxVal = c.Baseline
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	scale := float64(c.Width) / maxVal
	basePos := -1
	if c.Baseline > 0 {
		basePos = int(math.Round(c.Baseline * scale))
	}
	for _, bar := range c.Bars {
		n := int(math.Round(bar.Value * scale))
		if n < 0 {
			n = 0
		}
		if n > c.Width {
			n = c.Width
		}
		row := []byte(strings.Repeat("█", n) + strings.Repeat(" ", c.Width-n))
		line := string(row)
		if basePos >= 0 && basePos < c.Width {
			// Overlay the baseline marker.
			runes := []rune(line)
			if runes[basePos] == ' ' {
				runes[basePos] = '┊'
			}
			line = string(runes)
		}
		fmt.Fprintf(&b, "  %-*s │%s│ %.3f%s\n", maxLabel, bar.Label, line, bar.Value, c.Unit)
	}
	return b.String()
}

// Series renders a compact sparkline-style row for a metric across swept
// parameter values (used for the cache-sensitivity figure).
func Series(label string, xs []string, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", label)
	for i := range xs {
		fmt.Fprintf(&b, "  %s=%.2f", xs[i], ys[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// Spark returns a unicode sparkline of ys.
func Spark(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if span > 0 {
			idx = int((y - lo) / span * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
