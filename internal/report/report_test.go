package report

import (
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("demo", "x")
	c.Baseline = 1
	c.Add("alpha", 1.0)
	c.Add("beta", 2.0)
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "1.000x") || !strings.Contains(out, "2.000x") {
		t.Fatalf("missing values:\n%s", out)
	}
	// Beta's bar should be visibly longer than alpha's.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	alpha := strings.Count(lines[1], "█")
	beta := strings.Count(lines[2], "█")
	if beta <= alpha {
		t.Fatalf("bar lengths wrong: alpha=%d beta=%d\n%s", alpha, beta, out)
	}
	if !strings.Contains(out, "┊") {
		t.Fatalf("baseline marker missing:\n%s", out)
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := NewBarChart("t", "")
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart silent")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("t", "")
	c.Add("z", 0)
	out := c.String()
	if strings.Contains(out, "█") {
		t.Fatalf("zero value drew a bar:\n%s", out)
	}
}

func TestBarChartClampsOverflow(t *testing.T) {
	c := NewBarChart("t", "")
	c.Width = 10
	c.Add("big", 1e9)
	out := c.String()
	if strings.Count(out, "█") != 10 {
		t.Fatalf("overflow not clamped:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	s := Series("wl", []string{"128KB", "256KB"}, []float64{17.5, 17.4})
	if !strings.Contains(s, "128KB=17.50") || !strings.Contains(s, "256KB=17.40") {
		t.Fatalf("series wrong: %q", s)
	}
}

func TestSpark(t *testing.T) {
	s := Spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("spark length wrong: %q", s)
	}
	if s != "▁▃▆█" && s != "▁▂▅█" && s[0:3] == "" {
		// Allow rounding variation but lowest must be first, highest last.
	}
	r := []rune(s)
	if r[0] != '▁' || r[3] != '█' {
		t.Fatalf("spark extremes wrong: %q", s)
	}
	if Spark(nil) != "" {
		t.Fatal("nil spark not empty")
	}
	if len([]rune(Spark([]float64{5, 5}))) != 2 {
		t.Fatal("flat spark wrong length")
	}
}
