// Package audit is the FOX-style tamper-evident access-audit plane
// (FOX, arXiv:2104.08699): an append-only, hash-chained log of which
// tenant/GroupID touched which file pages, written by the memory
// controller as records flow through the page datapath.
//
// Each record is one 64-byte line — a cache-line-sized unit the
// controller writes through to a reserved region of the NVM device in the
// background, like its other metadata. The last 32 bytes of a record are
// its chain value: SHA-256 over the previous record's chain value and
// this record's payload. The chain head (latest chain value + sequence
// number) and the tail boundary (the chain value preceding the oldest
// retained record, once the ring has wrapped) are modelled as persistent
// processor registers, like the Merkle root: they survive power loss and
// cannot be rewritten from software. Tampering with any retained record —
// flipping a bit, reordering, truncating — breaks the recomputed chain
// against the head register, which is what Verify detects.
//
// A nil *Log is the detached recorder: Append degrades to one predictable
// branch, mirroring the telemetry registry and the journal, so the
// datapath pays nothing when auditing is off (the audit overhead guard
// pins this).
package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/telemetry"
)

// Op is the audited page-path operation.
type Op uint8

// Audited operations. OpMap/OpShred/OpKeyInstall/OpKeyRemove come from the
// kernel's MMIO surface (page fault tagging, secure deletion, key
// lifecycle); OpReadPage/OpWritePage from the batched page datapath.
const (
	OpMap Op = iota + 1
	OpReadPage
	OpWritePage
	OpShred
	OpKeyInstall
	OpKeyRemove
)

func (o Op) String() string {
	switch o {
	case OpMap:
		return "map"
	case OpReadPage:
		return "read_page"
	case OpWritePage:
		return "write_page"
	case OpShred:
		return "shred"
	case OpKeyInstall:
		return "key_install"
	case OpKeyRemove:
		return "key_remove"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// RecordSize is the on-device size of one audit record: exactly one line.
const RecordSize = config.LineSize

// payloadSize is the chained prefix of a record (everything but the chain
// value itself).
const payloadSize = 32

// Record is one decoded audit record.
//
// On-device layout (64 bytes):
//
//	[0:8)   Seq      record sequence number
//	[8:16)  Cycle    simulated cycle of the audited operation
//	[16:24) Page     physical page number
//	[24:28) Group    tenant GroupID from the page's FECB / MMIO op
//	[28:30) File     FileID
//	[30]    Op
//	[31]    reserved (zero)
//	[32:64) Chain    SHA-256(prev Chain || bytes [0:32))
type Record struct {
	Seq   uint64
	Cycle uint64
	Page  uint64
	Group uint32
	File  uint16
	Op    Op
	Chain [32]byte
	// Shard annotates which machine's log the record came from when a
	// multi-shard service merges logs for export; it is not part of the
	// on-device record.
	Shard int
}

// MarshalJSON renders the record for the /audit.jsonl export surface: the
// op as its symbolic name, the chain value as hex.
func (r Record) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq   uint64 `json:"seq"`
		Cycle uint64 `json:"cycle"`
		Op    string `json:"op"`
		Page  uint64 `json:"page"`
		Group uint32 `json:"group"`
		File  uint16 `json:"file"`
		Chain string `json:"chain"`
		Shard int    `json:"shard"`
	}{r.Seq, r.Cycle, r.Op.String(), r.Page, r.Group, r.File,
		hex.EncodeToString(r.Chain[:]), r.Shard})
}

func (r *Record) encode(line *aesctr.Line) {
	binary.LittleEndian.PutUint64(line[0:8], r.Seq)
	binary.LittleEndian.PutUint64(line[8:16], r.Cycle)
	binary.LittleEndian.PutUint64(line[16:24], r.Page)
	binary.LittleEndian.PutUint32(line[24:28], r.Group)
	binary.LittleEndian.PutUint16(line[28:30], r.File)
	line[30] = byte(r.Op)
	line[31] = 0
	copy(line[32:], r.Chain[:])
}

func decodeRecord(line *aesctr.Line) Record {
	var r Record
	r.Seq = binary.LittleEndian.Uint64(line[0:8])
	r.Cycle = binary.LittleEndian.Uint64(line[8:16])
	r.Page = binary.LittleEndian.Uint64(line[16:24])
	r.Group = binary.LittleEndian.Uint32(line[24:28])
	r.File = binary.LittleEndian.Uint16(line[28:30])
	r.Op = Op(line[30])
	copy(r.Chain[:], line[32:])
	return r
}

// Device is the NVM the log writes through to — satisfied by pcm.Memory.
type Device interface {
	ReadLine(pa addr.Phys) aesctr.Line
	WriteLine(pa addr.Phys, line aesctr.Line)
	Access(now config.Cycle, pa addr.Phys, write bool) config.Cycle
}

// DefaultCapacity is the default retained-record window: 4096 records =
// 256 KB of reserved device space.
const DefaultCapacity = 4096

// ErrChainBroken reports that the retained records do not recompute to the
// processor-held chain head — a record was tampered with, reordered, or
// lost.
var ErrChainBroken = errors.New("audit: hash chain broken")

// Log is the controller-owned audit log.
type Log struct {
	dev  Device
	base uint64
	cap  uint64

	// Persistent processor registers (survive power loss, unwritable from
	// software): the chain head and, once the ring has wrapped, the chain
	// value preceding the oldest retained record. headSeq is atomic so a
	// metrics exporter on another goroutine can read the head position
	// (HeadSeq) while the owning worker appends; everything else is
	// owner-goroutine state.
	headSeq  atomic.Uint64
	headHash [32]byte
	tailHash [32]byte

	// scratch is the chain-hash input buffer (prev chain || payload);
	// caller-owned so the per-record hash allocates nothing.
	scratch [payloadSize + 32]byte

	cRecords    *telemetry.Counter
	cVerifyFail *telemetry.Counter
}

// New builds a log writing through dev at base, retaining up to capacity
// records (<= 0 uses DefaultCapacity).
func New(dev Device, base uint64, capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{dev: dev, base: base, cap: uint64(capacity)}
}

// Instrument attaches telemetry (nil registry detaches; handles degrade to
// no-ops).
func (l *Log) Instrument(reg *telemetry.Registry) {
	l.cRecords = reg.Counter("audit.records_total")
	l.cVerifyFail = reg.Counter("audit.verify_failures_total")
}

func (l *Log) slotAddr(seq uint64) addr.Phys {
	return addr.Phys(l.base + (seq%l.cap)*RecordSize)
}

// Append chains and persists one record. No-op on a nil (detached) log;
// the nil check stays in this inlinable wrapper so the datapath's disabled
// cost is a single branch.
func (l *Log) Append(now uint64, op Op, page uint64, group uint32, file uint16) {
	if l == nil {
		return
	}
	l.append(now, op, page, group, file)
}

func (l *Log) append(now uint64, op Op, page uint64, group uint32, file uint16) {
	seq := l.headSeq.Load()
	if seq >= l.cap {
		// The slot being overwritten holds record seq-cap, the oldest
		// retained one; its chain value becomes the new tail boundary so
		// Verify can still anchor the window.
		old := l.dev.ReadLine(l.slotAddr(seq))
		copy(l.tailHash[:], old[payloadSize:])
	}
	r := Record{Seq: seq, Cycle: now, Page: page, Group: group, File: file, Op: op}
	var line aesctr.Line
	r.encode(&line)
	copy(l.scratch[:32], l.headHash[:])
	copy(l.scratch[32:], line[:payloadSize])
	l.headHash = sha256.Sum256(l.scratch[:])
	copy(line[payloadSize:], l.headHash[:])
	pa := l.slotAddr(seq)
	l.dev.WriteLine(pa, line)
	l.dev.Access(config.Cycle(now), pa, true) // background write, like other metadata
	l.headSeq.Store(seq + 1)
	l.cRecords.Inc()
}

// Head returns the chain head registers: how many records were ever
// appended and the chain value after the newest one. The hash is
// owner-goroutine state; cross-goroutine readers that only need the
// position should use HeadSeq.
func (l *Log) Head() (seq uint64, hash [32]byte) {
	if l == nil {
		return 0, [32]byte{}
	}
	return l.headSeq.Load(), l.headHash
}

// HeadSeq returns the number of records ever appended. Safe to call from
// any goroutine (metrics export).
func (l *Log) HeadSeq() uint64 {
	if l == nil {
		return 0
	}
	return l.headSeq.Load()
}

// retained returns the sequence range [lo, hi) currently on the device.
func (l *Log) retained() (lo, hi uint64) {
	hi = l.headSeq.Load()
	if hi > l.cap {
		lo = hi - l.cap
	}
	return lo, hi
}

// Records reads the retained window back from the device, oldest first.
func (l *Log) Records() []Record {
	if l == nil {
		return nil
	}
	lo, hi := l.retained()
	out := make([]Record, 0, hi-lo)
	for seq := lo; seq < hi; seq++ {
		line := l.dev.ReadLine(l.slotAddr(seq))
		out = append(out, decodeRecord(&line))
	}
	return out
}

// Verify recomputes the hash chain over every retained record and checks
// it against the processor-held head. This is the crash-recovery and
// tamper-detection entry point: after power loss the device contents and
// the head register are all that survive, and they must agree; after any
// bit of any record is modified, they cannot.
func (l *Log) Verify() error {
	if l == nil {
		return nil
	}
	lo, hi := l.retained()
	h := [32]byte{}
	if lo > 0 {
		h = l.tailHash
	}
	var in [payloadSize + 32]byte
	for seq := lo; seq < hi; seq++ {
		line := l.dev.ReadLine(l.slotAddr(seq))
		if got := binary.LittleEndian.Uint64(line[0:8]); got != seq {
			l.cVerifyFail.Inc()
			return fmt.Errorf("%w: slot for record %d holds sequence %d", ErrChainBroken, seq, got)
		}
		copy(in[:32], h[:])
		copy(in[32:], line[:payloadSize])
		h = sha256.Sum256(in[:])
		var stored [32]byte
		copy(stored[:], line[payloadSize:])
		if stored != h {
			l.cVerifyFail.Inc()
			return fmt.Errorf("%w: record %d chain value mismatch", ErrChainBroken, seq)
		}
	}
	if hi > 0 && h != l.headHash {
		l.cVerifyFail.Inc()
		return fmt.Errorf("%w: newest record does not reach the head register", ErrChainBroken)
	}
	return nil
}

// FlipBit is the chaos/tamper hook: it flips one bit of the retained
// record seq directly on the device, behind the chain's back, as a
// physical attacker rewriting the reserved region would. Returns false if
// the record is not retained. Self-inverse.
func (l *Log) FlipBit(seq uint64, bit int) bool {
	if l == nil {
		return false
	}
	lo, hi := l.retained()
	if seq < lo || seq >= hi {
		return false
	}
	pa := l.slotAddr(seq)
	line := l.dev.ReadLine(pa)
	bit %= RecordSize * 8
	line[bit/8] ^= 1 << (bit % 8)
	l.dev.WriteLine(pa, line)
	return true
}

// WriteJSONL renders records as newline-delimited JSON — the
// /audit.jsonl export format.
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
