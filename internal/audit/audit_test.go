package audit_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/pcm"
	"fsencr/internal/stats"
	"fsencr/internal/telemetry"
)

const testBase = 1 << 43

func newLog(capacity int) *audit.Log {
	dev := pcm.New(config.Default().PCM, stats.NewSet())
	return audit.New(dev, testBase, capacity)
}

func fill(l *audit.Log, n int) {
	for i := 0; i < n; i++ {
		l.Append(uint64(100+i), audit.OpWritePage, uint64(i%7), uint32(1+i%3), uint16(i%5))
	}
}

func TestAppendVerifyRoundtrip(t *testing.T) {
	l := newLog(64)
	if err := l.Verify(); err != nil {
		t.Fatalf("empty log must verify: %v", err)
	}
	fill(l, 40)
	if seq, _ := l.Head(); seq != 40 {
		t.Fatalf("head seq = %d, want 40", seq)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("chain must verify: %v", err)
	}
	recs := l.Records()
	if len(recs) != 40 {
		t.Fatalf("retained %d records, want 40", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) || r.Cycle != uint64(100+i) || r.Op != audit.OpWritePage {
			t.Fatalf("record %d decoded wrong: %+v", i, r)
		}
	}
}

func TestRingWrapKeepsChainAnchored(t *testing.T) {
	l := newLog(16)
	fill(l, 50)
	recs := l.Records()
	if len(recs) != 16 {
		t.Fatalf("retained %d records, want capacity 16", len(recs))
	}
	if recs[0].Seq != 34 || recs[15].Seq != 49 {
		t.Fatalf("retained window [%d,%d], want [34,49]", recs[0].Seq, recs[15].Seq)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("wrapped chain must verify: %v", err)
	}
}

func TestTamperAnyRecordDetected(t *testing.T) {
	l := newLog(32)
	fill(l, 32)
	for _, seq := range []uint64{0, 1, 15, 30, 31} {
		for _, bit := range []int{0, 77, 200, 255, 300, 511} {
			if !l.FlipBit(seq, bit) {
				t.Fatalf("FlipBit(%d,%d) refused a retained record", seq, bit)
			}
			if err := l.Verify(); err == nil {
				t.Fatalf("tampered record %d bit %d not detected", seq, bit)
			}
			l.FlipBit(seq, bit) // restore
			if err := l.Verify(); err != nil {
				t.Fatalf("restore of record %d bit %d did not heal the chain: %v", seq, bit, err)
			}
		}
	}
	if l.FlipBit(99, 0) {
		t.Fatal("FlipBit accepted a non-retained sequence")
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *audit.Log
	l.Append(1, audit.OpMap, 2, 3, 4)
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if recs := l.Records(); recs != nil {
		t.Fatal("nil log returned records")
	}
	if seq, _ := l.Head(); seq != 0 {
		t.Fatal("nil log has a head")
	}
}

func TestInstrumentCountsRecords(t *testing.T) {
	reg := telemetry.New()
	l := newLog(8)
	l.Instrument(reg)
	fill(l, 5)
	snap := reg.Snapshot()
	if snap.Counters["audit.records_total"] != 5 {
		t.Fatalf("audit.records_total = %d, want 5", snap.Counters["audit.records_total"])
	}
}

func TestJSONExportShape(t *testing.T) {
	l := newLog(8)
	l.Append(42, audit.OpReadPage, 7, 9, 3)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(l.Records()[0]); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["op"] != "read_page" || doc["page"] != float64(7) || doc["group"] != float64(9) {
		t.Fatalf("unexpected export shape: %v", doc)
	}
	if len(doc["chain"].(string)) != 64 {
		t.Fatalf("chain not hex-encoded SHA-256: %v", doc["chain"])
	}
}
