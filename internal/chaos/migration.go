package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"fsencr/internal/cluster"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/server"
)

// CampaignMigrationCrash is the cluster-level fault campaign: a two-node
// fabric loses the migration source or the migration target at every
// persist point of a live shard migration. The invariant under test is
// the coordinator's contract — at every crash point the migration either
// completes (the target proves the replayed state and owns the shard) or
// rolls back cleanly (the source resumes serving), there is never a
// moment with two live owners (split-brain), and acknowledged data
// survives on whichever owner is alive.
const CampaignMigrationCrash = "node-crash-during-migration"

// migrationVictims enumerates which node the campaign kills.
var migrationVictims = []string{"source", "target"}

// migrationOutcomes maps (step, victim) to the contractually required
// result. A dead source after a successful install cannot serve, so
// completing is safe; a dead target before the epoch bump must roll
// back; a dead target after the bump leaves the shard on the (dead)
// owner — unavailable until failover, but never split-brained.
var migrationOutcomes = map[[2]string]string{
	{cluster.StepAfterFreeze, "source"}:  "rolled-back",
	{cluster.StepAfterExport, "source"}:  "completed",
	{cluster.StepAfterInstall, "source"}: "completed",
	{cluster.StepAfterCommit, "source"}:  "completed",
	{cluster.StepAfterFreeze, "target"}:  "rolled-back",
	{cluster.StepAfterExport, "target"}:  "rolled-back",
	{cluster.StepAfterInstall, "target"}: "rolled-back",
	{cluster.StepAfterCommit, "target"}:  "completed",
}

// MigrationCrashCase is one (persist point, victim) experiment.
type MigrationCrashCase struct {
	Step       string `json:"step"`
	Victim     string `json:"victim"`
	Outcome    string `json:"outcome"`  // completed | rolled-back
	Expected   string `json:"expected"` // contractually required outcome
	OwnerAlive bool   `json:"owner_alive"`
	DataIntact bool   `json:"data_intact"` // seeded bytes readable on the live owner
	SplitBrain bool   `json:"split_brain"` // a live non-owner still answers for the shard
	Err        string `json:"err,omitempty"`
}

// ok reports whether the case satisfied the migration contract.
func (c MigrationCrashCase) ok() bool {
	if c.Outcome != c.Expected || c.SplitBrain {
		return false
	}
	if c.OwnerAlive && !c.DataIntact {
		return false
	}
	return true
}

// MigrationCrashResult aggregates the campaign.
type MigrationCrashResult struct {
	Cases []MigrationCrashCase `json:"cases"`
}

// Clean reports whether every crash point upheld the contract.
func (r *MigrationCrashResult) Clean() bool {
	if len(r.Cases) != len(cluster.MigrationSteps)*len(migrationVictims) {
		return false
	}
	for _, c := range r.Cases {
		if !c.ok() {
			return false
		}
	}
	return true
}

// String renders the campaign verdict table.
func (r *MigrationCrashResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "migration-crash campaign: %d crash points\n", len(r.Cases))
	for _, c := range r.Cases {
		owner := "alive"
		if !c.OwnerAlive {
			owner = "dead"
		}
		data := "-"
		if c.OwnerAlive {
			data = fmt.Sprintf("%v", c.DataIntact)
		}
		verdict := "OK"
		if !c.ok() {
			verdict = "VIOLATION"
		}
		fmt.Fprintf(&b, "  %-13s victim=%-6s -> %-11s (want %-11s) owner=%-5s data=%-5s split-brain=%v  %s\n",
			c.Step, c.Victim, c.Outcome, c.Expected, owner, data, c.SplitBrain, verdict)
	}
	if r.Clean() {
		b.WriteString("  every crash point completed or rolled back cleanly; no split-brain\n")
	}
	return b.String()
}

// fabricNode is one in-process fsencrd node on a real loopback listener.
type fabricNode struct {
	node *cluster.Node
	srv  *http.Server
	base string
	dead bool
}

const migNShards = 2

func startFabricNode(owned []int, prefix string) (*fabricNode, error) {
	svc := server.New(server.Options{
		Shards:          migNShards,
		ClusterShards:   migNShards,
		OwnedShards:     owned,
		MCMode:          memctrl.Mode{MemEncryption: true, FileEncryption: true},
		Access:          kernel.ModeDAX,
		AdmissionLog:    true,
		ChipSeqBase:     server.DefaultChipSeqBase,
		CheckpointEvery: 8,
		TokenPrefix:     prefix,
		RequestTimeout:  10 * time.Second,
	})
	n := cluster.NewNode(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, err
	}
	fn := &fabricNode{
		node: n,
		srv:  &http.Server{Handler: n.Mux()},
		base: "http://" + ln.Addr().String(),
	}
	n.SetBase(fn.base)
	go fn.srv.Serve(ln)
	return fn, nil
}

// kill drops the listener without waiting for in-flight work, then tears
// the process state down — the closest a single-process harness gets to
// SIGKILL at a persist point.
func (fn *fabricNode) kill() {
	if fn.dead {
		return
	}
	fn.dead = true
	fn.srv.Close()
	fn.node.Close()
}

// migrationTenant returns a tenant name homed on the given global shard.
func migrationTenant(shard int) (string, error) {
	for _, n := range []string{"acme", "globex", "initech", "umbrella", "wayne", "stark", "hooli"} {
		if fsproto.ShardIndex(fsproto.TenantGID(n), migNShards) == shard {
			return n, nil
		}
	}
	return "", fmt.Errorf("chaos: no tenant name maps to shard %d", shard)
}

// RunMigrationCrash executes the node-crash-during-migration campaign:
// for every persist point x victim, a fresh two-node cluster, a seeded
// shard, one migration with the victim killed exactly at that point, and
// a post-mortem of the placement table against the contract.
func RunMigrationCrash() (*MigrationCrashResult, error) {
	res := &MigrationCrashResult{}
	for _, step := range cluster.MigrationSteps {
		for _, victim := range migrationVictims {
			c, err := runMigrationCrashCase(step, victim)
			if err != nil {
				return nil, fmt.Errorf("chaos: %s/%s: %w", step, victim, err)
			}
			res.Cases = append(res.Cases, c)
		}
	}
	return res, nil
}

func runMigrationCrashCase(step, victim string) (MigrationCrashCase, error) {
	c := MigrationCrashCase{Step: step, Victim: victim, Expected: migrationOutcomes[[2]string{step, victim}]}
	src, err := startFabricNode(nil, "s")
	if err != nil {
		return c, err
	}
	defer src.kill()
	tgt, err := startFabricNode([]int{}, "t")
	if err != nil {
		return c, err
	}
	defer tgt.kill()
	coord := cluster.NewCoordinator(migNShards)
	if _, err := coord.Join(src.base, false); err != nil {
		return c, err
	}
	if _, err := coord.Join(tgt.base, true); err != nil {
		return c, err
	}

	// Seed acknowledged state on the shard under migration.
	const shard = 1
	tenant, err := migrationTenant(shard)
	if err != nil {
		return c, err
	}
	ctx := context.Background()
	seeded := bytes.Repeat([]byte{0x5a}, 512)
	sess, err := src.node.Service().Login(ctx, tenant, 1, "pw-"+tenant, 0)
	if err != nil {
		return c, err
	}
	if err := src.node.Service().Create(ctx, sess, fsproto.CreateRequest{
		Name: "seed.bin", Perm: 0600, Size: 4096, Encrypted: true,
	}); err != nil {
		return c, err
	}
	if err := src.node.Service().Write(ctx, sess, fsproto.WriteRequest{Name: "seed.bin", Data: seeded}); err != nil {
		return c, err
	}

	coord.StepHook = func(s string, _ int) {
		if s != step {
			return
		}
		if victim == "source" {
			src.kill()
		} else {
			tgt.kill()
		}
	}
	migErr := coord.Migrate(shard, tgt.base)
	if migErr != nil {
		c.Err = migErr.Error()
	}

	tbl := coord.Table()
	owner, _ := tbl.Owner(shard)
	ownerNode, otherNode := src, tgt
	if owner == tgt.base {
		c.Outcome = "completed"
		ownerNode, otherNode = tgt, src
	} else {
		c.Outcome = "rolled-back"
	}
	// A migration that returned an error must not have moved the table.
	if migErr != nil && c.Outcome == "completed" {
		return c, fmt.Errorf("migration errored (%v) but the table cut over", migErr)
	}
	c.OwnerAlive = !ownerNode.dead

	// Split-brain probe: a live non-owner must refuse the shard.
	if !otherNode.dead {
		if _, err := otherNode.node.Service().LogLen(ctx, shard); err == nil {
			c.SplitBrain = true
		}
	}
	// Data probe: the live owner still serves every acknowledged byte.
	if c.OwnerAlive {
		svc := ownerNode.node.Service()
		s2, err := svc.Login(ctx, tenant, 1, "pw-"+tenant, 0)
		if err != nil {
			return c, fmt.Errorf("post-crash login on owner: %w", err)
		}
		pl, err := svc.Read(ctx, s2, fsproto.ReadRequest{Name: "seed.bin", Length: 512})
		if err != nil {
			return c, fmt.Errorf("post-crash read on owner: %w", err)
		}
		c.DataIntact = bytes.Equal(pl.Data, seeded)
		pl.Release()
	}
	return c, nil
}
