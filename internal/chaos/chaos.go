// Package chaos is the deterministic fault-injection engine over the
// simulated machine: a seeded campaign runner that flips bits in every
// security-relevant structure at rest — memory/file counter blocks, the
// sealed OTT region, data-line ciphertext, audit-log records — tears
// lines, abuses the counter-wrap path, and power-fails a pmem workload at
// every persist point, then checks that the stack's integrity machinery
// (Bonsai Merkle verification, Osiris ECC check tags, the audit hash
// chain, crash recovery) catches every single fault. Nothing may ever
// survive to plaintext undetected.
//
// Campaigns are fully deterministic: the same seed reruns byte-identically
// (the Result JSON is stable), because every fault site, bit index, and
// crash point derives from one sim.RNG and the simulated machine itself is
// deterministic. Faults are injected through the realistic-layer hooks the
// memory controller, OTT region, and audit log expose (a physical attacker
// rewriting NVM behind the controller's back), detection is observed
// through the same counters and journals production code uses, and every
// fault is restored after its verdict so one campaign can sweep thousands
// of faults over one booted machine and still recover cleanly at the end.
package chaos

import (
	"fmt"
	"strings"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/pmem"
	"fsencr/internal/sim"
)

// Fault kinds, in campaign execution order.
const (
	KindMetadata = "metadata" // MECB/FECB counter-block bit flips -> Merkle verify
	KindData     = "data"     // data-line ciphertext bit flips -> ECC check tag
	KindTorn     = "torn"     // torn (half-written) lines -> ECC check tag
	KindOTT      = "ott"      // sealed OTT-region record flips -> Merkle verify over the region
	KindWrap     = "wrap"     // minor-counter wrap abuse -> forced re-encryption, data intact
	KindAudit    = "audit"    // audit-record flips -> hash-chain check
	KindCrash    = "crash"    // power loss at every persist point -> Osiris recovery
)

var allKinds = []string{KindMetadata, KindData, KindTorn, KindOTT, KindWrap, KindAudit, KindCrash}

// fault-budget weights (percent); wrap is budgeted separately because one
// wrap abuse costs 128 page writes.
var kindWeight = map[string]int{
	KindMetadata: 30, KindData: 30, KindTorn: 15, KindOTT: 10, KindAudit: 10, KindCrash: 5,
}

// Options configures one campaign.
type Options struct {
	// Seed drives every random choice; same seed, same Result bytes.
	Seed uint64
	// Faults is the target number of injected faults (<= 0: 256). The
	// actual total may exceed it slightly (integer budget split).
	Faults int
	// Campaign selects fault kinds: "all" (default) or a comma-separated
	// subset of metadata,data,torn,ott,wrap,audit,crash.
	Campaign string
}

// FaultRecord describes one injected fault and its verdict.
type FaultRecord struct {
	Kind     string `json:"kind"`
	Page     uint64 `json:"page,omitempty"`
	Line     int    `json:"line,omitempty"`
	Bit      int    `json:"bit,omitempty"`
	Detected bool   `json:"detected"`
	Detector string `json:"detector,omitempty"`
}

// KindResult aggregates one fault kind.
type KindResult struct {
	Injected int `json:"injected"`
	Detected int `json:"detected"`
}

// Result is one campaign's deterministic outcome.
type Result struct {
	Seed     uint64 `json:"seed"`
	Campaign string `json:"campaign"`
	Injected int    `json:"injected"`
	Detected int    `json:"detected"`
	// Undetected lists every fault that survived to plaintext unflagged —
	// it must be empty.
	Undetected []FaultRecord          `json:"undetected"`
	ByKind     map[string]*KindResult `json:"by_kind"`

	// Detector-side totals accumulated over the campaign.
	IntegrityViolations uint64 `json:"integrity_violations"`
	ECCErrors           uint64 `json:"ecc_errors"`
	MemReencryptions    uint64 `json:"mem_reencryptions"`
	FileReencryptions   uint64 `json:"file_reencryptions"`

	// End-of-campaign health: all injected faults restored, plaintext
	// byte-exact, then a final power loss + recovery with the audit chain
	// still verifying against its head register.
	FinalSweepOK bool   `json:"final_sweep_ok"`
	RecoverOK    bool   `json:"recover_ok"`
	AuditChainOK bool   `json:"audit_chain_ok"`
	AuditRecords uint64 `json:"audit_records"`
}

// Clean reports whether the campaign is fully green: every fault detected
// and the machine healthy afterwards.
func (r *Result) Clean() bool {
	return len(r.Undetected) == 0 && r.FinalSweepOK && r.RecoverOK && r.AuditChainOK
}

// String renders the human-readable campaign report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign %q seed=%d: %d/%d faults detected\n",
		r.Campaign, r.Seed, r.Detected, r.Injected)
	for _, k := range allKinds {
		if kr, ok := r.ByKind[k]; ok {
			fmt.Fprintf(&b, "  %-8s %4d injected  %4d detected\n", k, kr.Injected, kr.Detected)
		}
	}
	fmt.Fprintf(&b, "  violations=%d ecc_errors=%d reencrypt=%d/%d audit_records=%d\n",
		r.IntegrityViolations, r.ECCErrors, r.MemReencryptions, r.FileReencryptions, r.AuditRecords)
	fmt.Fprintf(&b, "  final_sweep=%v recover=%v audit_chain=%v undetected=%d\n",
		r.FinalSweepOK, r.RecoverOK, r.AuditChainOK, len(r.Undetected))
	return b.String()
}

// lab is the campaign's victim machine: an FsEncr system with a few
// encrypted DAX files whose page frames the fault injectors target.
type lab struct {
	sys   *kernel.System
	proc  *kernel.Process
	mc    *memctrl.Controller
	aud   *audit.Log
	jrn   *journal.Journal
	now   config.Cycle
	files []*fs.File
	pages []labPage // every mapped file page frame
	buf   aesctr.Page
}

type labPage struct {
	file *fs.File
	idx  int
	pa   addr.Phys // page-aligned, no DF bit
}

const (
	labFiles      = 3
	labPagesPer   = 4
	labPageBytes  = labPagesPer * config.PageSize
	wrapFileBytes = config.PageSize
)

// pattern fills dst with file/page-determined plaintext.
func pattern(dst *aesctr.Page, file, page int) {
	for i := range dst {
		dst[i] = byte(17*file + 31*page + i)
	}
}

func setupLab() (*lab, error) {
	l := &lab{
		sys: kernel.Boot(config.Default(),
			memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX),
		jrn: journal.New(0),
	}
	l.sys.AttachJournal(l.jrn)
	l.aud = l.sys.EnableAudit(0)
	l.mc = l.sys.M.MC
	l.proc = l.sys.NewProcess(1000, 100)
	for fi := 0; fi < labFiles; fi++ {
		f, err := l.sys.CreateFile(l.proc, fmt.Sprintf("chaos%d.dat", fi), 0600,
			labPageBytes, true, fmt.Sprintf("pw%d", fi))
		if err != nil {
			return nil, err
		}
		va, err := l.proc.Mmap(f, labPageBytes)
		if err != nil {
			return nil, err
		}
		for p := 0; p < labPagesPer; p++ {
			pattern(&l.buf, fi, p)
			if err := l.proc.Write(va+addr.Virt(p*config.PageSize), l.buf[:]); err != nil {
				return nil, err
			}
		}
		if err := l.proc.Persist(va, labPageBytes); err != nil {
			return nil, err
		}
		l.files = append(l.files, f)
		for p := 0; p < labPagesPer; p++ {
			pa, err := f.PagePA(p)
			if err != nil {
				return nil, err
			}
			l.pages = append(l.pages, labPage{file: f, idx: p, pa: pa})
		}
	}
	// Push every dirty line to NVM so faults land on final ciphertext and
	// detection reads go through the controller, not stale core caches.
	l.sys.M.WritebackAll()
	return l, nil
}

// readPage drives one decrypting page read through the controller — the
// detection probe after each injected fault.
func (l *lab) readPage(pa addr.Phys) {
	l.now = l.mc.ReadPageInto(l.now+1, pa.WithDF(), &l.buf)
}

// violations returns the combined tamper-detection count (Merkle verify
// failures + ECC check-tag mismatches both land in IntegrityViolations).
func (l *lab) violations() uint64 { return l.mc.IntegrityViolations() }

// campaign bookkeeping.
type tally struct {
	res *Result
}

func (t *tally) note(fr FaultRecord) {
	kr := t.res.ByKind[fr.Kind]
	if kr == nil {
		kr = &KindResult{}
		t.res.ByKind[fr.Kind] = kr
	}
	kr.Injected++
	t.res.Injected++
	if fr.Detected {
		kr.Detected++
		t.res.Detected++
	} else {
		t.res.Undetected = append(t.res.Undetected, fr)
	}
}

// parseCampaign resolves the kind list.
func parseCampaign(s string) ([]string, error) {
	if s == "" || s == "all" {
		return allKinds, nil
	}
	seen := map[string]bool{}
	for _, k := range allKinds {
		seen[k] = false
	}
	var kinds []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, ok := seen[part]; !ok {
			return nil, fmt.Errorf("chaos: unknown fault kind %q (have %s)", part, strings.Join(allKinds, ","))
		}
		if !seen[part] {
			seen[part] = true
			kinds = append(kinds, part)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("chaos: empty campaign %q", s)
	}
	// Keep canonical execution order regardless of input order.
	var ordered []string
	for _, k := range allKinds {
		if seen[k] {
			ordered = append(ordered, k)
		}
	}
	return ordered, nil
}

// budget splits the fault target over the selected kinds by weight.
func budget(kinds []string, faults int) map[string]int {
	out := map[string]int{}
	wrapShare := 0
	if contains(kinds, KindWrap) {
		// One wrap abuse is 128 whole-page writes; a handful proves the
		// path without dominating the campaign's runtime.
		wrapShare = faults / 250
		if wrapShare < 1 {
			wrapShare = 1
		}
		if wrapShare > 4 {
			wrapShare = 4
		}
		out[KindWrap] = wrapShare
	}
	total := 0
	for _, k := range kinds {
		if k != KindWrap {
			total += kindWeight[k]
		}
	}
	for _, k := range kinds {
		if k == KindWrap {
			continue
		}
		n := faults * kindWeight[k] / total
		if n < 1 {
			n = 1
		}
		out[k] = n
	}
	return out
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// Run executes one campaign.
func Run(o Options) (*Result, error) {
	if o.Faults <= 0 {
		o.Faults = 256
	}
	if o.Campaign == "" {
		o.Campaign = "all"
	}
	kinds, err := parseCampaign(o.Campaign)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(o.Seed)
	l, err := setupLab()
	if err != nil {
		return nil, err
	}
	res := &Result{Seed: o.Seed, Campaign: o.Campaign, ByKind: map[string]*KindResult{},
		Undetected: []FaultRecord{}}
	t := &tally{res: res}
	counts := budget(kinds, o.Faults)

	for _, kind := range kinds {
		n := counts[kind]
		switch kind {
		case KindMetadata:
			runMetadata(l, rng, n, t)
		case KindData:
			runData(l, rng, n, t)
		case KindTorn:
			runTorn(l, rng, n, t)
		case KindOTT:
			runOTT(l, rng, n, t)
		case KindWrap:
			runWrap(l, rng, n, t)
		case KindAudit:
			runAudit(l, rng, n, t)
		case KindCrash:
			if err := runCrash(rng, n, t); err != nil {
				return nil, err
			}
		}
	}

	res.IntegrityViolations = l.mc.IntegrityViolations()
	res.ECCErrors = l.mc.Stats().Get("mc.data_ecc_errors")
	res.MemReencryptions = l.mc.Stats().Get("mc.mem_reencryptions")
	res.FileReencryptions = l.mc.Stats().Get("mc.file_reencryptions")
	seq, _ := l.aud.Head()
	res.AuditRecords = seq

	// Final sweep: every fault was restored, so every page must decrypt
	// byte-exactly with no further violations.
	res.FinalSweepOK = finalSweep(l)
	// End-to-end power loss: recovery must succeed and the audit chain
	// must still verify against its processor-held head.
	l.sys.M.Crash(true)
	res.RecoverOK = l.sys.M.Recover() == nil && finalSweep(l)
	res.AuditChainOK = l.aud.Verify() == nil
	return res, nil
}

func finalSweep(l *lab) bool {
	v0 := l.violations()
	var want aesctr.Page
	for _, p := range l.pages {
		l.readPage(p.pa)
		fi := fileIndex(l, p.file)
		pattern(&want, fi, p.idx)
		if l.buf != want {
			return false
		}
	}
	return l.violations() == v0
}

func fileIndex(l *lab, f *fs.File) int {
	for i, lf := range l.files {
		if lf == f {
			return i
		}
	}
	return -1
}

// runMetadata flips arbitrary bits of encoded MECB/FECB blocks; the next
// fetch re-verifies the block against the Bonsai Merkle tree.
func runMetadata(l *lab, rng *sim.RNG, n int, t *tally) {
	for i := 0; i < n; i++ {
		p := l.pages[rng.Intn(len(l.pages))]
		page := p.pa.PageNum()
		bit := rng.Intn(int(config.LineSize) * 8)
		fileSide := rng.Intn(2) == 1
		if fileSide {
			l.mc.FlipFECBBit(page, bit)
		} else {
			l.mc.FlipMECBBit(page, bit)
		}
		v0 := l.violations()
		l.readPage(p.pa)
		detected := l.violations() > v0
		if fileSide {
			l.mc.FlipFECBBit(page, bit)
		} else {
			l.mc.FlipMECBBit(page, bit)
		}
		kindBit := bit
		t.note(FaultRecord{Kind: KindMetadata, Page: page, Bit: kindBit,
			Detected: detected, Detector: "merkle"})
	}
}

// runData flips single ciphertext bits at rest; the decrypting read must
// flag the line via its Osiris ECC check tag.
func runData(l *lab, rng *sim.RNG, n int, t *tally) {
	for i := 0; i < n; i++ {
		p := l.pages[rng.Intn(len(l.pages))]
		li := rng.Intn(config.LinesPerPage)
		bit := rng.Intn(int(config.LineSize) * 8)
		la := p.pa + addr.Phys(li*config.LineSize)
		l.mc.FlipDataBit(la, bit)
		v0 := l.violations()
		l.readPage(p.pa)
		detected := l.violations() > v0
		l.mc.FlipDataBit(la, bit)
		t.note(FaultRecord{Kind: KindData, Page: p.pa.PageNum(), Line: li, Bit: bit,
			Detected: detected, Detector: "ecc"})
	}
}

// runTorn half-overwrites stored lines (a crash mid-line-program); the ECC
// check tag catches the inconsistent ciphertext.
func runTorn(l *lab, rng *sim.RNG, n int, t *tally) {
	for i := 0; i < n; i++ {
		p := l.pages[rng.Intn(len(l.pages))]
		li := rng.Intn(config.LinesPerPage)
		la := p.pa + addr.Phys(li*config.LineSize)
		l.mc.TearLine(la)
		v0 := l.violations()
		l.readPage(p.pa)
		detected := l.violations() > v0
		l.mc.TearLine(la)
		t.note(FaultRecord{Kind: KindTorn, Page: p.pa.PageNum(), Line: li,
			Detected: detected, Detector: "ecc"})
	}
}

// runOTT flips bits of sealed OTT-region records; the next key lookup must
// fail Merkle verification of the bucket (the tree covers the region).
func runOTT(l *lab, rng *sim.RNG, n int, t *tally) {
	for i := 0; i < n; i++ {
		fi := rng.Intn(len(l.files))
		f := l.files[fi]
		bit := rng.Intn(int(8 * 32)) // SealedSize bits
		if !l.mc.TamperOTTRecord(f.GroupID, f.Ino, bit) {
			// No sealed record (cannot happen: installs write through);
			// count as undetected so it is never silently skipped.
			t.note(FaultRecord{Kind: KindOTT, Bit: bit, Detected: false, Detector: "none"})
			continue
		}
		v0 := l.violations()
		l.readPage(l.pages[fi*labPagesPer].pa)
		detected := l.violations() > v0
		l.mc.TamperOTTRecord(f.GroupID, f.Ino, bit) // restore
		t.note(FaultRecord{Kind: KindOTT, Bit: bit, Detected: detected, Detector: "merkle"})
	}
}

// runWrap abuses the minor-counter wrap path: 128 consecutive page writes
// force every line's 7-bit minor counter to overflow in both domains. The
// abuse is "detected" when the controller re-encrypted the page under a
// bumped major counter and the plaintext still reads back byte-exact —
// i.e. the wrap neither reused a pad nor corrupted data.
func runWrap(l *lab, rng *sim.RNG, n int, t *tally) {
	p := l.pages[0]
	df := p.pa.WithDF()
	var plain aesctr.Page
	for i := 0; i < n; i++ {
		salt := byte(rng.Intn(256))
		for w := 0; w < int(config.MinorCounterMax)+1; w++ {
			for b := range plain {
				plain[b] = salt ^ byte(w+b)
			}
			l.now = l.mc.WritePage(l.now+1, df, &plain)
		}
		m0 := l.mc.Stats().Get("mc.mem_reencryptions")
		f0 := l.mc.Stats().Get("mc.file_reencryptions")
		_ = m0
		_ = f0
		l.readPage(p.pa)
		detected := l.buf == plain &&
			l.mc.Stats().Get("mc.mem_reencryptions") > 0 &&
			l.mc.Stats().Get("mc.file_reencryptions") > 0
		t.note(FaultRecord{Kind: KindWrap, Page: p.pa.PageNum(), Detected: detected,
			Detector: "reencrypt"})
	}
	// Leave the page holding its canonical pattern for the final sweep.
	pattern(&plain, 0, 0)
	l.now = l.mc.WritePage(l.now+1, df, &plain)
}

// runAudit flips bits of retained audit records on the device; the hash
// chain recomputation against the processor-held head must break.
func runAudit(l *lab, rng *sim.RNG, n int, t *tally) {
	hi, _ := l.aud.Head()
	if hi == 0 {
		return
	}
	lo := uint64(0)
	if hi > audit.DefaultCapacity {
		lo = hi - audit.DefaultCapacity
	}
	for i := 0; i < n; i++ {
		seq := lo + rng.Uint64n(hi-lo)
		bit := rng.Intn(audit.RecordSize * 8)
		if !l.aud.FlipBit(seq, bit) {
			t.note(FaultRecord{Kind: KindAudit, Bit: bit, Detected: false, Detector: "none"})
			continue
		}
		detected := l.aud.Verify() != nil
		l.aud.FlipBit(seq, bit) // restore
		detected = detected && l.aud.Verify() == nil
		t.note(FaultRecord{Kind: KindAudit, Bit: bit, Detected: detected, Detector: "chain"})
	}
}

// runCrash generalizes the ad-hoc crash tests into a sweep: a deterministic
// pmem workload on a private machine, power-failed at every persist point —
// once after each store's Write (pre-persist) and once after its Persist —
// with Osiris recovery, counter-exactness verification, and a readback of
// everything persisted so far after every single crash.
func runCrash(rng *sim.RNG, n int, t *tally) error {
	sys := kernel.Boot(config.Default(),
		memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX)
	proc := sys.NewProcess(1000, 100)
	const poolBytes = 64 << 10
	f, err := sys.CreateFile(proc, "crash.pool", 0600, poolBytes, true, "pw")
	if err != nil {
		return err
	}
	pool, err := pmem.Create(proc, f, poolBytes)
	if err != nil {
		return err
	}

	crash := func(step int, point string) {
		backup := rng.Intn(2) == 0
		sys.M.Crash(backup)
		recovered := sys.M.Recover() == nil && sys.M.MC.VerifyRecovery() == nil
		t.note(FaultRecord{Kind: KindCrash, Line: step, Detected: recovered,
			Detector: "recovery/" + point})
	}

	type persisted struct {
		va  addr.Virt
		val uint64
	}
	var model []persisted
	verify := func() bool {
		for _, pv := range model {
			got, err := pool.LoadU64(pv.va)
			if err != nil || got != pv.val {
				return false
			}
		}
		return true
	}

	steps := n / 2
	if steps < 1 {
		steps = 1
	}
	for step := 0; step < steps; step++ {
		off, err := pool.Alloc(8)
		if err != nil {
			return err
		}
		va := pool.Addr(off)
		val := rng.Uint64()

		// Crash point A: the store was written but not yet persisted; it
		// may legitimately be lost, but recovery must succeed and every
		// previously persisted store must survive.
		if err := proc.WriteU64(va, val); err != nil {
			return err
		}
		crash(step, "pre-persist")
		if !verify() {
			markLastUndetected(t)
		}

		// Redo the store and persist it, then crash point B: now it must
		// survive.
		if err := pool.StoreU64(va, val); err != nil {
			return err
		}
		model = append(model, persisted{va: va, val: val})
		crash(step, "post-persist")
		if !verify() {
			markLastUndetected(t)
		}
	}
	return nil
}

// markLastUndetected downgrades the most recent fault to undetected when a
// post-crash readback found corrupted persisted data.
func markLastUndetected(t *tally) {
	r := t.res
	// The fault was just noted as detected; flip the accounting.
	last := FaultRecord{Kind: KindCrash, Detected: false, Detector: "readback"}
	kr := r.ByKind[KindCrash]
	if kr != nil && kr.Detected > 0 {
		kr.Detected--
		r.Detected--
	}
	r.Undetected = append(r.Undetected, last)
}
