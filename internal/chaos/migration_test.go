package chaos

import "testing"

// TestMigrationCrashCampaign sweeps a node crash over every migration
// persist point for both victims and requires the coordinator contract to
// hold at each: complete or roll back cleanly, no split-brain, no lost
// acknowledged data on a live owner.
func TestMigrationCrashCampaign(t *testing.T) {
	res, err := RunMigrationCrash()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(res.Cases) != 8 {
		t.Fatalf("campaign ran %d cases, want 8", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.Outcome != c.Expected {
			t.Errorf("%s/%s: outcome %s, want %s (err=%s)", c.Step, c.Victim, c.Outcome, c.Expected, c.Err)
		}
		if c.SplitBrain {
			t.Errorf("%s/%s: split-brain — two live nodes serve the shard", c.Step, c.Victim)
		}
		if c.OwnerAlive && !c.DataIntact {
			t.Errorf("%s/%s: live owner lost acknowledged data", c.Step, c.Victim)
		}
	}
	if !res.Clean() {
		t.Fatalf("campaign not clean:\n%s", res.String())
	}
}
