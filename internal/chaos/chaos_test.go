package chaos_test

import (
	"encoding/json"
	"testing"

	"fsencr/internal/chaos"
)

// TestSmallCampaignFullDetection runs a bounded all-kinds campaign and
// requires 100% detection plus a healthy machine afterwards. This is the
// tier-1 gate; `make chaos` runs the full >=1000-fault sweep.
func TestSmallCampaignFullDetection(t *testing.T) {
	res, err := chaos.Run(chaos.Options{Seed: 1, Faults: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected < 120 {
		t.Fatalf("injected %d faults, want >= 120", res.Injected)
	}
	if !res.Clean() {
		t.Fatalf("campaign not clean:\n%s", res.String())
	}
	if res.Detected != res.Injected {
		t.Fatalf("detected %d of %d", res.Detected, res.Injected)
	}
	// Every selected kind must actually have run.
	for _, k := range []string{"metadata", "data", "torn", "ott", "wrap", "audit", "crash"} {
		kr := res.ByKind[k]
		if kr == nil || kr.Injected == 0 {
			t.Fatalf("kind %q injected nothing", k)
		}
		if kr.Detected != kr.Injected {
			t.Fatalf("kind %q: %d/%d detected", k, kr.Detected, kr.Injected)
		}
	}
	if res.IntegrityViolations == 0 || res.ECCErrors == 0 {
		t.Fatalf("detector counters empty: violations=%d ecc=%d",
			res.IntegrityViolations, res.ECCErrors)
	}
	if res.AuditRecords == 0 {
		t.Fatal("audit plane recorded nothing")
	}
}

// TestDeterministicRerun reruns the same seed and requires byte-identical
// JSON — the reproducibility contract for chaos triage.
func TestDeterministicRerun(t *testing.T) {
	run := func() []byte {
		res, err := chaos.Run(chaos.Options{Seed: 7, Faults: 60})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestSeedChangesCampaign guards against the RNG being ignored.
func TestSeedChangesCampaign(t *testing.T) {
	a, err := chaos.Run(chaos.Options{Seed: 1, Faults: 40, Campaign: "data"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.Run(chaos.Options{Seed: 2, Faults: 40, Campaign: "data"})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) == string(jb) {
		t.Fatal("different seeds produced identical campaigns")
	}
}

// TestCampaignSubset runs a single-kind campaign and rejects bad names.
func TestCampaignSubset(t *testing.T) {
	res, err := chaos.Run(chaos.Options{Seed: 3, Faults: 20, Campaign: "metadata,torn"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("subset campaign not clean:\n%s", res.String())
	}
	for k := range res.ByKind {
		if k != "metadata" && k != "torn" {
			t.Fatalf("unselected kind %q ran", k)
		}
	}
	if _, err := chaos.Run(chaos.Options{Campaign: "nonsense"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
