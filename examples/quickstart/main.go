// Quickstart: boot a simulated FsEncr system, create an encrypted file on
// the DAX-mounted persistent region, map it directly into a process, write
// and read through ordinary loads/stores, and show that the bytes at rest
// in the NVM are ciphertext while access latency stays near the
// unencrypted baseline.
package main

import (
	"bytes"
	"fmt"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/kernel"
)

func main() {
	// Boot a machine with memory encryption + FsEncr file encryption, the
	// persistent region mounted as DAX ext4 (the paper's setup).
	sys := kernel.Boot(config.Default(), core.SchemeFsEncr.MCMode(), kernel.ModeDAX)
	proc := sys.NewProcess(1000, 100)

	// Create an encrypted file; the kernel derives the file key from the
	// owner's passphrase and installs it in the controller's Open Tunnel
	// Table over MMIO.
	file, err := sys.CreateFile(proc, "notes.db", 0600, 64<<10, true, "my passphrase")
	if err != nil {
		panic(err)
	}
	fmt.Printf("created %q: inode %d, group %d, encrypted=%v\n",
		file.Name, file.Ino, file.GroupID, file.Encrypted)

	// Map it DAX-style: loads/stores hit NVM directly, no page cache.
	va, err := proc.Mmap(file, 64<<10)
	if err != nil {
		panic(err)
	}

	msg := []byte("direct-access AND encrypted: let's have both!")
	start := proc.Now()
	if err := proc.Write(va, msg); err != nil {
		panic(err)
	}
	if err := proc.Persist(va, uint64(len(msg))); err != nil {
		panic(err)
	}
	fmt.Printf("wrote and persisted %d bytes in %d simulated cycles\n",
		len(msg), proc.Now()-start)

	got := make([]byte, len(msg))
	start = proc.Now()
	if err := proc.Read(va, got); err != nil {
		panic(err)
	}
	fmt.Printf("read them back in %d cycles: %q\n", proc.Now()-start, got)

	// Peek at the physical NVM, as an attacker with the DIMM would.
	sys.M.WritebackAll()
	pa, _ := file.PagePA(0)
	raw := sys.M.MC.RawLine(pa.WithDF())
	fmt.Printf("bytes at rest in NVM: %x...\n", raw[:24])
	if bytes.Contains(raw[:], msg[:16]) {
		panic("plaintext leaked to NVM!")
	}
	fmt.Println("at-rest bytes are ciphertext: OK")

	// The same data is unreadable without the file key even if the memory
	// encryption key is compromised.
	half := sys.M.MC.DecryptWithMemoryKeyOnly(pa.WithDF())
	if bytes.Contains(half[:], msg[:16]) {
		panic("memory key alone decrypted file data!")
	}
	fmt.Println("memory key alone cannot decrypt it: OK (defense in depth)")

	// Compare the cost against the same access pattern on the three other
	// schemes.
	fmt.Println("\nper-op cost of a small persistent workload under each scheme:")
	for _, sc := range []core.Scheme{core.SchemePlain, core.SchemeBaseline, core.SchemeFsEncr, core.SchemeSWEncr} {
		r, err := core.Run(core.Request{Workload: "hashmap", Scheme: sc, Ops: 400})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-9s %8.1f cycles/op\n", sc, r.CyclesPerOp())
	}
}
