// Multiuser: per-file keys protecting users from each other (the System C
// guarantees of Table I), including the §VI scenarios: a shared group file,
// an accidental chmod 777, an adversarial admin-less insider, and secure
// deletion.
package main

import (
	"bytes"
	"fmt"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/fs"
	"fsencr/internal/kernel"
)

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	sys := kernel.Boot(config.Default(), core.SchemeFsEncr.MCMode(), kernel.ModeDAX)

	alice := sys.NewProcess(1000, 100) // group 100: research
	bob := sys.NewProcess(1001, 100)   // same group as alice
	carol := sys.NewProcess(1002, 200) // different group

	// Alice creates a private encrypted file and a group-shared one.
	private, err := sys.CreateFile(alice, "alice-private.db", 0600, 16<<10, true, "alice-pass")
	must(err)
	shared, err := sys.CreateFile(alice, "research-shared.db", 0660, 16<<10, true, "research-group-pass")
	must(err)

	va, err := alice.Mmap(private, 16<<10)
	must(err)
	secret := []byte("alice's unpublished results......")
	must(alice.Write(va, secret))
	must(alice.Persist(va, uint64(len(secret))))

	sva, err := alice.Mmap(shared, 16<<10)
	must(err)
	must(alice.Write(sva, []byte("group dataset v1")))
	must(alice.Persist(sva, 16))

	fmt.Println("== permission matrix ==")
	check := func(who string, p *kernel.Process, name, pass string) {
		_, err := sys.OpenFile(p, name, fs.ReadAccess, pass)
		status := "granted"
		if err != nil {
			status = fmt.Sprintf("denied (%v)", err)
		}
		fmt.Printf("  %-6s opens %-20s -> %s\n", who, name, status)
	}
	check("alice", alice, "alice-private.db", "alice-pass")
	check("bob", bob, "alice-private.db", "alice-pass") // mode 0600: denied by permissions
	check("bob", bob, "research-shared.db", "research-group-pass")
	check("carol", carol, "research-shared.db", "research-group-pass") // other: denied

	// Bob, in the same group, reads the shared file through DAX.
	bva, err := bob.Mmap(shared, 16<<10)
	must(err)
	got := make([]byte, 16)
	must(bob.Read(bva, got))
	fmt.Printf("\nbob reads shared file directly: %q\n", got)

	// The §VI accident: a buggy Makefile runs chmod 777 on Alice's
	// private file. Permission bits no longer protect it — the per-file
	// key still does.
	fmt.Println("\n== chmod 777 accident ==")
	must(sys.FS.Chmod(private, 1000, 0777))
	if _, err := sys.OpenFile(carol, "alice-private.db", fs.ReadAccess, "carols-guess"); err != nil {
		fmt.Printf("  carol (wrong passphrase): denied (%v)\n", err)
	} else {
		panic("carol got in!")
	}

	// An insider scans physical memory for Alice's data: the file OTP
	// keeps it unintelligible even with the memory-encryption key.
	fmt.Println("\n== insider memory scan ==")
	sys.M.WritebackAll()
	pa, _ := private.PagePA(0)
	dump := sys.M.MC.DecryptWithMemoryKeyOnly(pa.WithDF())
	if bytes.Contains(dump[:], secret[:16]) {
		panic("insider read alice's data")
	}
	fmt.Println("  memory-key-only dump of alice's file: ciphertext (protected)")

	// Secure deletion: alice removes the file; its counters are shredded.
	fmt.Println("\n== secure deletion ==")
	must(sys.Unlink(alice, "alice-private.db"))
	line, _ := sys.M.MC.ReadLine(0, pa.WithDF())
	if bytes.Contains(line[:], secret[:16]) {
		panic("deleted data recoverable")
	}
	fmt.Println("  unlinked file's pages: unintelligible even with the old key")
}
