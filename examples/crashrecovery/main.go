// Crashrecovery: Osiris-style crash consistency for the security metadata
// (§II-D, §III-H). The example writes a persistent hashmap under FsEncr,
// power-fails the machine at an arbitrary point — losing the metadata cache
// and any unpersisted counter updates — and then recovers: counters are
// reconstructed line by line from the ECC check tags within the stop-loss
// window, the Merkle tree is regenerated and verified against the
// processor-resident root, and every persisted record decrypts intact.
package main

import (
	"bytes"
	"fmt"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/kernel"
	"fsencr/internal/pmem"
	"fsencr/internal/sim"
	"fsencr/internal/whisper"
)

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	sys := kernel.Boot(config.Default(), core.SchemeFsEncr.MCMode(), kernel.ModeDAX)
	proc := sys.NewProcess(1000, 100)

	file, err := sys.CreateFile(proc, "store.pool", 0600, 16<<20, true, "pw")
	must(err)
	pool, err := pmem.Create(proc, file, 16<<20)
	must(err)
	h, err := whisper.CreateHashmap(pool, 0, 512, 64)
	must(err)

	// Phase 1: populate.
	rng := sim.NewRNG(7)
	val := make([]byte, 64)
	values := make(map[uint64][]byte)
	const N = 300
	for k := uint64(0); k < N; k++ {
		rng.Bytes(val)
		values[k] = append([]byte(nil), val...)
		must(h.Put(k, val))
	}
	fmt.Printf("stored %d records under FsEncr\n", N)

	// Phase 2: power loss. Everything volatile dies: CPU caches, the
	// metadata cache, counter updates not yet persisted under the
	// stop-loss discipline, and (modelling residual-energy flush) the OTT
	// spills its entries into the sealed region.
	fmt.Println("\n*** POWER FAILURE ***")
	sys.M.Crash(true)

	// Phase 3: recovery.
	if err := sys.M.Recover(); err != nil {
		panic(fmt.Sprintf("recovery failed: %v", err))
	}
	recovered := sys.M.Stats().Get("mc.recovered_lines")
	fmt.Printf("Osiris recovered counters for %d lines; Merkle root verified\n", recovered)

	// Phase 4: verify every record.
	buf := make([]byte, 64)
	for k := uint64(0); k < N; k++ {
		n, err := h.Get(k, buf)
		must(err)
		if !bytes.Equal(buf[:n], values[k]) {
			panic(fmt.Sprintf("record %d corrupted after crash", k))
		}
	}
	fmt.Printf("all %d records intact after recovery\n", N)

	// Phase 5: keep working — write after recovery, crash again, recover
	// again. Counter state must remain consistent across repeated crashes.
	for k := uint64(N); k < N+50; k++ {
		rng.Bytes(val)
		values[k] = append([]byte(nil), val...)
		must(h.Put(k, val))
	}
	sys.M.Crash(true)
	must(sys.M.Recover())
	for k := uint64(0); k < N+50; k++ {
		n, err := h.Get(k, buf)
		must(err)
		if !bytes.Equal(buf[:n], values[k]) {
			panic(fmt.Sprintf("record %d corrupted after second crash", k))
		}
	}
	fmt.Println("second crash/recovery cycle: still intact")
}
