// Multiuser-net: the examples/multiuser isolation story, replayed over the
// network through fsencrd. Alice and Bob share the "research" tenant,
// Carol is in "finance"; each talks to the service through its own
// internal/fsclient session, and every guarantee the local example shows —
// permission bits, group-shared per-file keys, the chmod-777 argument,
// secure deletion — must survive the trip through HTTP, the shard queues,
// and the multi-tenant session layer.
package main

import (
	"fmt"
	"net"
	"net/http"

	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/fsproto"
	"fsencr/internal/server"
)

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	// Boot a 2-shard fsencrd in-process and serve it on a loopback port —
	// the same wiring `fsencrd serve` does.
	svc := server.New(server.Options{
		Shards: 2,
		MCMode: core.SchemeFsEncr.MCMode(),
		Access: core.SchemeFsEncr.AccessMode(),
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	hs := &http.Server{Handler: svc.Mux()}
	go hs.Serve(lis)
	base := "http://" + lis.Addr().String()
	fmt.Printf("fsencrd on %s\n\n", base)

	alice := fsclient.Dial(base)
	bob := fsclient.Dial(base)
	carol := fsclient.Dial(base)
	must(alice.Login("research", 1000, "alice-pass"))
	must(bob.Login("research", 1001, "bob-pass"))
	must(carol.Login("finance", 1002, "carol-pass"))
	fmt.Printf("research tenant -> shard %d, finance tenant -> shard %d\n\n",
		alice.Shard(), carol.Shard())

	// Alice: a private file and a group-shared one (keyed with a shared
	// passphrase her tenant colleagues know).
	must(alice.Create(fsproto.CreateRequest{Name: "private.db", Perm: 0600, Size: 16 << 10, Encrypted: true}))
	must(alice.Create(fsproto.CreateRequest{
		Name: "shared.db", Perm: 0660, Size: 16 << 10, Encrypted: true,
		Passphrase: "research-group-pass",
	}))
	must(alice.Write(fsproto.WriteRequest{Name: "private.db", Data: []byte("alice's unpublished results")}))
	must(alice.Write(fsproto.WriteRequest{
		Name: "shared.db", Data: []byte("group dataset v1"),
		Passphrase: "research-group-pass",
	}))

	fmt.Println("== permission matrix over the network ==")
	check := func(who string, c *fsclient.Client, tenant, name, pass string) {
		_, err := c.Read(fsproto.ReadRequest{Name: name, Tenant: tenant, Length: 16, Passphrase: pass})
		status := "granted"
		if err != nil {
			status = fmt.Sprintf("denied (%v)", err)
		}
		fmt.Printf("  %-6s reads %-22s -> %s\n", who, name, status)
	}
	check("alice", alice, "", "private.db", "")
	check("bob", bob, "", "private.db", "")                               // 0600: permission bits deny
	check("bob", bob, "", "shared.db", "research-group-pass")             // group key: granted
	check("carol", carol, "research", "shared.db", "research-group-pass") // cross-tenant: denied

	// The §VI argument, networked: an accidental chmod 666 opens the
	// permission bits, but Carol still cannot read — the per-file key
	// gates her out at the memory controller.
	fmt.Println("\n== chmod 666 on private.db ==")
	must(alice.Chmod(fsproto.ChmodRequest{Name: "private.db", Perm: 0666}))
	check("carol", carol, "research", "private.db", "carol-guess")

	// Secure deletion: after Alice unlinks, the key is gone and the pages
	// are shredded; nobody — including Alice — sees the bytes again.
	fmt.Println("\n== delete private.db ==")
	must(alice.Delete(fsproto.DeleteRequest{Name: "private.db"}))
	check("alice", alice, "", "private.db", "")

	// The KV facade rides the same isolation: Alice's store answers her
	// tenant, Carol's probe is denied.
	fmt.Println("\n== tenant KV store ==")
	must(alice.KVCreate(fsproto.KVCreateRequest{Store: "results", Size: 1 << 20}))
	must(alice.KVPut(fsproto.KVPutRequest{Store: "results", Key: 42, Value: []byte("p < 0.05")}))
	v, err := alice.KVGet(fsproto.KVGetRequest{Store: "results", Key: 42})
	must(err)
	fmt.Printf("  alice  kv[42] = %q\n", v)
	if _, err := carol.KVGet(fsproto.KVGetRequest{Store: "results", Tenant: "research", Key: 42}); err != nil {
		fmt.Printf("  carol  kv[42] -> denied (%v)\n", err)
	}

	// What the security journal saw.
	var denials int
	for _, e := range svc.JournalEvents() {
		if e.Type == "cross_tenant_denied" {
			denials++
		}
	}
	snap := svc.MetricsSnapshot()
	fmt.Printf("\njournal: %d cross-tenant denials; served %d requests\n",
		denials, snap.Counters["server.requests_total"])

	// Graceful drain, then the listener closes.
	svc.Close()
	must(hs.Close())
	fmt.Println("drained cleanly")
}
