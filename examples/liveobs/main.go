// Liveobs: the observability plane watching a live batch. A PMEMKV
// workload sweep (baseline vs FsEncr, the Figure 8 comparison) runs on the
// parallel experiment runner while an in-process HTTP server exposes the
// telemetry sink and the security-event journal; the example plays the
// role of the operator, polling /healthz and /snapshot.json mid-run the
// way `curl` would against `fsencr-sim -serve`.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"fsencr/internal/core"
	"fsencr/internal/obsplane"
	"fsencr/internal/telemetry"
)

func get(base, path string) []byte {
	resp, err := http.Get(base + path)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	return body
}

func main() {
	core.EnableTelemetry()
	core.EnableJournal()

	srv := obsplane.NewServer(obsplane.Options{
		Snapshot: core.LiveTelemetrySnapshot,
		Journal:  core.LiveJournalEvents,
		Interval: 50 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	base := "http://" + addr
	fmt.Printf("observability plane on %s\n", base)

	// The Figure 8 batch: every PMEMKV workload under baseline and FsEncr.
	var reqs []core.Request
	for _, w := range core.PMEMKVWorkloads {
		for _, s := range []core.Scheme{core.SchemeBaseline, core.SchemeFsEncr} {
			reqs = append(reqs, core.Request{Workload: w, Scheme: s, Ops: 400})
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := core.RunBatch(reqs)
		done <- err
	}()

	// Poll the plane while the batch runs, like a dashboard would.
	var doc struct {
		Seq      uint64              `json:"seq"`
		Snapshot *telemetry.Snapshot `json:"snapshot"`
		Delta    *telemetry.Snapshot `json:"delta"`
	}
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				panic(err)
			}
			running = false
		case <-time.After(100 * time.Millisecond):
		}
		fmt.Printf("healthz: %s", get(base, "/healthz"))
		if err := json.Unmarshal(get(base, "/snapshot.json"), &doc); err != nil {
			panic(err)
		}
		fmt.Printf("snapshot seq=%d: %d runs merged, %d pcm reads (+%d since last publish)\n",
			doc.Seq, doc.Snapshot.Runs, doc.Snapshot.Counters["pcm.reads"], doc.Delta.Counters["pcm.reads"])
	}

	srv.Publish() // final numbered snapshot covering the whole batch
	if err := json.Unmarshal(get(base, "/snapshot.json"), &doc); err != nil {
		panic(err)
	}
	evs := core.JournalEvents()
	fmt.Printf("batch done: %d runs, %d security-journal events\n", doc.Snapshot.Runs, len(evs))
	for i, e := range evs {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(evs)-5)
			break
		}
		fmt.Printf("  cycle=%-8d %-18s group=%d file=%d\n", e.Cycle, e.Type, e.Group, e.File)
	}
}
