// Securekv: a persistent key-value store (the PMEMKV-style B+Tree engine)
// running over an FsEncr-encrypted, DAX-mapped file — the paper's primary
// use case. Two worker threads share the store; every byte is encrypted
// with both the memory key and the file key, yet the engine is written as
// ordinary load/store code against a PMDK-like API.
package main

import (
	"fmt"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/kernel"
	"fsencr/internal/kvstore"
	"fsencr/internal/pmem"
	"fsencr/internal/sim"
)

func main() {
	sys := kernel.Boot(config.Default(), core.SchemeFsEncr.MCMode(), kernel.ModeDAX)

	// Two worker threads (processes sharing the file), as in Table II.
	w0 := sys.NewProcess(1000, 100)
	w1 := sys.NewProcess(1000, 100)

	file, err := sys.CreateFile(w0, "kv.pool", 0600, 32<<20, true, "kv-passphrase")
	if err != nil {
		panic(err)
	}
	pool0, err := pmem.Create(w0, file, 32<<20)
	if err != nil {
		panic(err)
	}
	pool1, err := pmem.Open(w1, file, 32<<20)
	if err != nil {
		panic(err)
	}

	tree0, err := kvstore.Create(pool0, 0)
	if err != nil {
		panic(err)
	}
	tree1 := tree0.View(pool1)

	// Interleave inserts from both workers.
	rng := sim.NewRNG(2026)
	val := make([]byte, 64)
	const N = 400
	for i := 0; i < N; i++ {
		rng.Bytes(val)
		t := tree0
		if i%2 == 1 {
			t = tree1
		}
		if err := t.Put(uint64(i), val); err != nil {
			panic(err)
		}
	}
	fmt.Printf("inserted %d records from 2 workers (%d / %d cycles)\n",
		N, w0.Now(), w1.Now())

	// Worker 1 reads what worker 0 wrote and vice versa.
	buf := make([]byte, 64)
	for i := 0; i < N; i++ {
		t := tree1
		if i%2 == 1 {
			t = tree0
		}
		if _, err := t.Get(uint64(i), buf); err != nil {
			panic(fmt.Sprintf("get %d: %v", i, err))
		}
	}
	fmt.Println("cross-worker reads: all", N, "records visible")

	// Range scan in key order.
	count := 0
	if err := tree0.Scan(100, buf, func(k uint64, v []byte) bool {
		count++
		return k < 120
	}); err != nil {
		panic(err)
	}
	fmt.Printf("ordered scan from key 100 visited %d records\n", count)

	// Power-fail the machine mid-life and recover: Osiris reconstructs the
	// encryption counters, the Merkle root checks out, and every record is
	// still there.
	sys.M.Crash(true)
	if err := sys.M.Recover(); err != nil {
		panic(err)
	}
	for i := 0; i < N; i++ {
		if _, err := tree0.Get(uint64(i), buf); err != nil {
			panic(fmt.Sprintf("post-crash get %d: %v", i, err))
		}
	}
	fmt.Println("crash + Osiris recovery: all records intact")

	fmt.Printf("\nNVM traffic: %d line reads, %d line writes (incl. security metadata)\n",
		sys.M.MC.PCM.Reads(), sys.M.MC.PCM.Writes())
}
