module fsencr

go 1.22
