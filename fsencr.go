// Package fsencr is a library-level reproduction of "Filesystem Encryption
// or Direct-Access for NVM Filesystems? Let's Have Both!" (HPCA 2022): a
// hardware/software co-design that layers transparent, per-file,
// hardware-assisted encryption (FsEncr) on top of counter-mode memory
// encryption for NVM-hosted, DAX-mapped files.
//
// The repository contains a full simulated system — PCM device, cache
// hierarchy, secure memory controller with MECB/FECB split counters, Open
// Tunnel Table, Bonsai Merkle tree, Osiris crash consistency, a DAX
// filesystem and kernel model, a PMDK-like persistence library, and the
// paper's complete benchmark suite (PMEMKV BTree, Whisper, synthetic DAX
// microbenchmarks).
//
// This package is the stable entry point: it re-exports the experiment
// harness so downstream code can run simulations without reaching into
// internal packages.
//
//	res, err := fsencr.Run(fsencr.Request{
//	    Workload: "ycsb",
//	    Scheme:   fsencr.SchemeFsEncr,
//	    Ops:      2500,
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results of every table and figure.
package fsencr

import (
	"fsencr/internal/core"
	"fsencr/internal/workloads"
)

// Scheme selects the protection configuration under test.
type Scheme = core.Scheme

// The four schemes of the paper's evaluation.
const (
	// SchemePlain is ext4-dax with no encryption (Figure 3 baseline).
	SchemePlain = core.SchemePlain
	// SchemeBaseline is ext4-dax + counter-mode memory encryption + BMT.
	SchemeBaseline = core.SchemeBaseline
	// SchemeFsEncr is the paper's hardware-assisted filesystem encryption.
	SchemeFsEncr = core.SchemeFsEncr
	// SchemeSWEncr is eCryptfs-style software filesystem encryption.
	SchemeSWEncr = core.SchemeSWEncr
)

// Request describes one simulation run.
type Request = core.Request

// Result carries the measured statistics of one run.
type Result = core.Result

// Run executes one workload under one scheme and returns its measurements.
func Run(req Request) (Result, error) { return core.Run(req) }

// Workloads returns the names of every Table II benchmark.
func Workloads() []string { return workloads.Names() }
