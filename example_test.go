package fsencr_test

import (
	"fmt"

	"fsencr"
)

// Example runs the YCSB benchmark under the paper's FsEncr scheme and
// under plain ext4-dax, showing how the public API is used to compare
// protection configurations.
func Example() {
	plain, err := fsencr.Run(fsencr.Request{
		Workload: "ycsb",
		Scheme:   fsencr.SchemePlain,
		Ops:      200,
	})
	if err != nil {
		panic(err)
	}
	enc, err := fsencr.Run(fsencr.Request{
		Workload: "ycsb",
		Scheme:   fsencr.SchemeFsEncr,
		Ops:      200,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("encrypted run is deterministic: %v\n", enc.Cycles > 0)
	fmt.Printf("overhead bounded: %v\n", float64(enc.Cycles) < 2.0*float64(plain.Cycles))
	// Output:
	// encrypted run is deterministic: true
	// overhead bounded: true
}

// ExampleWorkloads lists the Table II benchmark registry.
func ExampleWorkloads() {
	names := fsencr.Workloads()
	fmt.Println(len(names), "workloads;", names[0], "...", names[len(names)-1])
	// Output:
	// 17 workloads; dax1 ... ctree
}
