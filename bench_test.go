// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark regenerates its figure at full scale (the
// per-workload BenchOps of Table II) and reports the headline number the
// paper quotes as a custom metric, printing the full table via b.Logf
// (visible with `go test -bench=. -v` or in bench_output.txt).
//
// Expected shapes (paper -> this reproduction): see EXPERIMENTS.md.
package fsencr_test

import (
	"sync"
	"testing"

	"fsencr/internal/core"
	"fsencr/internal/stats"
	"fsencr/internal/workloads"
)

// benchOps returns the full-scale op count for a workload group, using the
// registry's per-workload BenchOps (they are uniform within a group).
func benchOps(name string) int {
	w, err := workloads.Lookup(name)
	if err != nil {
		panic(err)
	}
	return w.BenchOps
}

// Figures 8-10 project the same runs; memoize them across benchmarks.
var (
	pmemkvOnce sync.Once
	pmemkvPrs  core.PairResults
	pmemkvErr  error

	synthOnce sync.Once
	synthPrs  core.PairResults
	synthErr  error
)

func pmemkvPairs(b *testing.B) core.PairResults {
	pmemkvOnce.Do(func() {
		// PMEMKV BenchOps differ between S (6000) and L (1500) variants;
		// RunGroupFunc takes the per-workload count and fans the whole
		// group out over the parallel runner.
		pmemkvPrs, pmemkvErr = core.RunGroupFunc(core.PMEMKVWorkloads,
			core.SchemeBaseline, core.SchemeFsEncr, benchOps, nil)
	})
	if pmemkvErr != nil {
		b.Fatal(pmemkvErr)
	}
	return pmemkvPrs
}

func synthPairs(b *testing.B) core.PairResults {
	synthOnce.Do(func() {
		synthPrs, synthErr = core.RunGroupFunc(core.SyntheticWorkloads,
			core.SchemeBaseline, core.SchemeFsEncr, benchOps, nil)
	})
	if synthErr != nil {
		b.Fatal(synthErr)
	}
	return synthPrs
}

// BenchmarkFig03SoftwareEncryption regenerates Figure 3: eCryptfs-style
// software encryption slowdown over plain ext4-dax on the Whisper suite.
// Paper: ~2.7x average, ~5x for YCSB.
func BenchmarkFig03SoftwareEncryption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, ratios, err := core.Fig3(benchOps("ycsb"))
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", tb)
		b.ReportMetric(stats.Mean(ratios), "avg-slowdown-x")
		b.ReportMetric(ratios[0], "ycsb-slowdown-x")
	}
}

// BenchmarkFig08PMEMKVSlowdown regenerates Figure 8: FsEncr slowdown over
// the memory-encryption baseline on PMEMKV. Paper: single-digit percent,
// larger for large values and write-heavy workloads.
func BenchmarkFig08PMEMKVSlowdown(b *testing.B) {
	prs := pmemkvPairs(b)
	for i := 0; i < b.N; i++ {
		tb, ratios := core.Fig8(prs)
		b.Logf("\n%s", tb)
		b.ReportMetric((stats.Mean(ratios)-1)*100, "avg-slowdown-%")
	}
}

// BenchmarkFig09PMEMKVWrites regenerates Figure 9: normalized NVM writes.
func BenchmarkFig09PMEMKVWrites(b *testing.B) {
	prs := pmemkvPairs(b)
	for i := 0; i < b.N; i++ {
		tb, ratios := core.Fig9(prs)
		b.Logf("\n%s", tb)
		b.ReportMetric(stats.Mean(ratios), "avg-write-ratio")
	}
}

// BenchmarkFig10PMEMKVReads regenerates Figure 10: normalized NVM reads.
func BenchmarkFig10PMEMKVReads(b *testing.B) {
	prs := pmemkvPairs(b)
	for i := 0; i < b.N; i++ {
		tb, ratios := core.Fig10(prs)
		b.Logf("\n%s", tb)
		b.ReportMetric(stats.Mean(ratios), "avg-read-ratio")
	}
}

// BenchmarkFig11Whisper regenerates Figure 11 (slowdown, writes, reads on
// Whisper) plus the paper's headline 98.33% slowdown-reduction claim.
func BenchmarkFig11Whisper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Fig11(benchOps("ycsb"))
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s\n%s\n%s", res.Slowdown, res.Writes, res.Reads)
		b.ReportMetric((stats.Mean(res.Ratios)-1)*100, "fsencr-slowdown-%")
		b.ReportMetric(res.Reduction*100, "slowdown-reduction-%")
	}
}

// BenchmarkFig12SyntheticSlowdown regenerates Figure 12. Paper: ~20%
// average across DAX-1..4.
func BenchmarkFig12SyntheticSlowdown(b *testing.B) {
	prs := synthPairs(b)
	for i := 0; i < b.N; i++ {
		tb, ratios := core.Fig12(prs)
		b.Logf("\n%s", tb)
		b.ReportMetric((stats.Mean(ratios)-1)*100, "avg-slowdown-%")
	}
}

// BenchmarkFig13SyntheticWrites regenerates Figure 13.
func BenchmarkFig13SyntheticWrites(b *testing.B) {
	prs := synthPairs(b)
	for i := 0; i < b.N; i++ {
		tb, ratios := core.Fig13(prs)
		b.Logf("\n%s", tb)
		b.ReportMetric(stats.Mean(ratios), "avg-write-ratio")
	}
}

// BenchmarkFig14SyntheticReads regenerates Figure 14.
func BenchmarkFig14SyntheticReads(b *testing.B) {
	prs := synthPairs(b)
	for i := 0; i < b.N; i++ {
		tb, ratios := core.Fig14(prs)
		b.Logf("\n%s", tb)
		b.ReportMetric(stats.Mean(ratios), "avg-read-ratio")
	}
}

// BenchmarkFig15CacheSensitivity regenerates Figure 15: FsEncr slowdown vs
// metadata cache size for Fillrandom-L, Hashmap and DAX-2. Paper: real
// workloads improve markedly with cache size, synthetic ones only slightly.
func BenchmarkFig15CacheSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, series, err := core.Fig15(0)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", tb)
		for name, pts := range series {
			if len(pts) > 0 {
				b.ReportMetric(pts[0]-pts[len(pts)-1], name+"-improvement-pp")
			}
		}
	}
}

// BenchmarkTableIIWorkloads runs every Table II workload once under FsEncr
// at a reduced op count, as an end-to-end throughput reference.
func BenchmarkTableIIWorkloads(b *testing.B) {
	for _, name := range workloads.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.Run(core.Request{Workload: name, Scheme: core.SchemeFsEncr, Ops: 300})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.CyclesPerOp(), "sim-cycles/op")
			}
		})
	}
}

// BenchmarkAblationStopLoss sweeps the Osiris stop-loss bound (DESIGN.md
// ablation): eager persistence buys a smaller recovery window with more
// metadata writes.
func BenchmarkAblationStopLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := core.AblationStopLoss("hashmap", 2000, []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", tb)
	}
}

// BenchmarkAblationMerkleArity sweeps the integrity-tree fan-out.
func BenchmarkAblationMerkleArity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := core.AblationMerkleArity("dax3", 4000)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", tb)
	}
}

// BenchmarkAblationOTTSize stresses the Open Tunnel Table with 2048
// encrypted files across capacities from 64 to 1024 entries.
func BenchmarkAblationOTTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, _, err := core.AblationOTTSize(2048, 40000, []core.OTTGeometry{
			{Banks: 1, PerBank: 64},
			{Banks: 2, PerBank: 128},
			{Banks: 8, PerBank: 128},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", tb)
	}
}

// BenchmarkAblationCachePartition compares the shared metadata cache with
// the partitioned organization of §III-D at equal capacity.
func BenchmarkAblationCachePartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := core.AblationCachePartition("hashmap", 2000)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", tb)
	}
}
